"""The adversarial scenario matrix: fault plans × workloads, run in parallel.

Every scenario builds a monitored :class:`~repro.core.cluster.AtumCluster`,
applies a named :class:`~repro.faults.plan.FaultPlan`, drives one of the
paper's workloads (broadcast dissemination, continuous churn, growth) and
reports a *robustness row*: the invariant-monitor outcome, delivery/
completion statistics, fault-subsystem counters, and — via
:func:`repro.analysis.robustness.scenario_robustness_row` — the paper's
analytical failure probabilities for the same fault fraction.

Because every fault stays inside the paper's fault model (Byzantine
placement is capped to a strict minority of every vgroup, partitioned and
crashed nodes are exempt from the wrongful-eviction check), **zero invariant
violations is the expected outcome of the whole matrix** — a non-zero count
is a protocol bug, not an unlucky roll.

Scenarios are seeded and deterministic; :func:`scenario_shard` is a
module-level (picklable) entry point so :func:`run_matrix` can fan seeds
across worker processes through :mod:`repro.sim.runpar` and merge the rows
deterministically.

CLI::

    python -m repro.faults.scenarios --matrix small --seeds 2 \\
        --output FAULT_MATRIX.json
"""

from __future__ import annotations

import math
import os
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.robustness import catchup_latency_bound, scenario_robustness_row
from repro.core.cluster import AtumCluster
from repro.core.config import AtumParameters, SmrKind
from repro.core.middleware import MetricsTap
from repro.core.policies import POLICY_BUILDERS
from repro.faults.behaviours import apply_plan
from repro.faults.invariants import InvariantConfig, InvariantMonitor
from repro.faults.plan import (
    FaultPlan,
    GroupSlowdown,
    LinkFault,
    NodeFault,
    Partition,
)
from repro.group.antientropy import AntiEntropyConfig
from repro.net.requests import RequestPolicy
from repro.overlay.membership import MembershipError
from repro.sim.rng import derive_seed, named_stream
from repro.sim.runpar import merge_shards, run_sharded
from repro.workloads.broadcasts import BroadcastWorkload, BroadcastWorkloadConfig
from repro.workloads.byzantine import select_byzantine_per_group
from repro.workloads.churn import ChurnConfig, ChurnWorkload
from repro.workloads.growth import GrowthConfig, GrowthWorkload


@dataclass(frozen=True)
class Scenario:
    """One (plan, workload) combination of the matrix.

    Attributes:
        name: Unique ``workload/plan`` identifier.
        workload: ``"broadcast"``, ``"churn"`` or ``"growth"``.
        plan: Key into :data:`PLAN_BUILDERS`.
        nodes: System size (``build_static`` base; growth grows beyond it).
        fault_fraction: Fraction handed to the plan builder (Byzantine
            share, partition share, ...).
        heartbeats: Whether nodes run the heartbeat/eviction layer.
        heartbeat_period: Heartbeat interval when enabled.
        broadcasts / interval / settle_time: Broadcast-workload knobs.
        churn_rate / churn_duration: Churn-workload knobs.
        growth_target: Growth-workload target size.
        delivery_bound: The ≥ correct-fraction delivery bound this scenario
            is expected to meet (broadcast workloads only; reported, and
            asserted by the matrix tests for the partition-heal scenario).
        smr: ``"sync"`` (Dolev-Strong) or ``"async"`` (PBFT) engine.
        antientropy: Equip every node with the digest-exchange repair layer
            (:mod:`repro.group.antientropy`); required by the 1.0 delivery
            bounds of the partition scenarios.
        checkpoint_interval: PBFT checkpoint interval
            (:mod:`repro.smr.checkpoint`); ``0`` disables checkpointing.
            Checkpoint-enabled async broadcast scenarios are held to
            per-vgroup log **equality** (not just prefix consistency) at
            quiescence — the liveness bound state transfer restores.
        catchup_bound: Maximum allowed ``smr.checkpoint.catchup_latency``
            (simulated seconds from a replica first requesting state
            transfer to its log gap closing).  Checked against the run's
            *maximum* observed catch-up latency and folded into the bound
            check; a vacuous run (no replica ever caught up) fails the
            bound.  ``None`` skips it.  The Byzantine-responder scenarios
            pair this empirical bound with the analytical
            :func:`repro.analysis.robustness.catchup_latency_bound` column.
        attack_threshold: For join-leave attack scenarios: the maximum
            per-vgroup *threshold excess* (coalition members minus the
            group's ``(size - 1) // 2`` strict-minority bound) the attack
            is allowed to reach; ``0`` means the coalition must never
            outgrow the eviction/agreement threshold of any vgroup.
            Folded into the bound check; ``None`` skips it.
        gmin / gmax: Vgroup size bounds (matrix defaults 3/6).  The
            join-leave scenario overrides them to the paper's regime —
            larger vgroups — because the strict-minority bound is
            *supposed* to fail with high probability when vgroups are far
            below ``k * log2(N)``.
        adaptive_quarantine: Feed the request layer's quarantine threshold
            from the observed per-window fault rate
            (:class:`repro.net.requests.RequestPolicy`): hostile periods
            tighten it toward the floor, quiet ones relax it back.  Off by
            default so the static-threshold rows replay byte-identically.
        shuffle: Membership shuffling on leaves (the paper's anti-targeting
            defense; default on).  The epoch-crossing row disables it so
            the reconfiguring vgroup keeps a stable core and the
            transition-chain recovery under test actually spans epochs.
        policies: Adaptive-parameter policies to install, by
            :data:`repro.core.policies.POLICY_BUILDERS` key.  Installed
            *after* ``build_static`` so the initial population does not
            read as a churn spike.  Empty (the default) runs the static
            configuration byte-identically to builds without the policy
            layer — the A/B rows pair one static and one adaptive scenario
            that differ only in this field.
        min_policy_transitions: With ``policies``, the minimum accepted
            ``policy.transitions`` per run — an adaptive row whose
            policies never actually adapt is vacuous and fails its bound
            (folded into ``delivery_bound_met``).
    """

    name: str
    workload: str
    plan: str
    nodes: int = 30
    fault_fraction: float = 0.2
    heartbeats: bool = False
    heartbeat_period: float = 2.0
    broadcasts: int = 6
    interval: float = 0.5
    settle_time: float = 30.0
    churn_rate: float = 10.0
    churn_duration: float = 90.0
    growth_target: int = 40
    delivery_bound: float = 1.0
    smr: str = "sync"
    antientropy: bool = False
    checkpoint_interval: int = 0
    catchup_bound: Optional[float] = None
    attack_threshold: Optional[float] = None
    gmin: int = 3
    gmax: int = 6
    adaptive_quarantine: bool = False
    shuffle: bool = True
    policies: Tuple[str, ...] = ()
    min_policy_transitions: int = 1

    def __post_init__(self) -> None:
        if self.smr not in ("sync", "async"):
            raise ValueError(
                f"unknown smr engine {self.smr!r}; expected 'sync' or 'async'"
            )
        if self.checkpoint_interval < 0:
            raise ValueError("checkpoint_interval must be non-negative")
        if self.checkpoint_interval and self.smr != "async":
            raise ValueError("checkpointing requires the async (PBFT) engine")
        unknown = [key for key in self.policies if key not in POLICY_BUILDERS]
        if unknown:
            raise ValueError(
                f"unknown policy key(s) {unknown!r}; expected keys of "
                f"repro.core.policies.POLICY_BUILDERS"
            )
        if self.min_policy_transitions < 0:
            raise ValueError("min_policy_transitions must be non-negative")


# --------------------------------------------------------------------- plans


def _plan_none(scenario: Scenario, cluster: AtumCluster, rng: random.Random) -> FaultPlan:
    return FaultPlan()


def _plan_partition_heal(
    scenario: Scenario, cluster: AtumCluster, rng: random.Random
) -> FaultPlan:
    """Partition a random ``fault_fraction`` of the system, heal mid-run."""
    addresses = sorted(cluster.engine.node_group)
    count = max(1, int(math.floor(scenario.fault_fraction * len(addresses))))
    members = tuple(sorted(rng.sample(addresses, count)))
    return FaultPlan(partitions=(Partition(members=members, start=0.6, heal_at=4.0),))


def _plan_two_sided_split(
    scenario: Scenario, cluster: AtumCluster, rng: random.Random
) -> FaultPlan:
    """Side-preserving split: two internally-connected halves, healed mid-run.

    The random bisection deliberately ignores vgroup boundaries, so vgroups
    straddle the split and each side keeps running its own heartbeats and
    SMR — the paper's real hard case of divergence-and-reconcile rather
    than mere unavailability.
    """
    addresses = sorted(cluster.engine.node_group)
    shuffled = list(addresses)
    rng.shuffle(shuffled)
    half = len(shuffled) // 2
    side_a = tuple(sorted(shuffled[:half]))
    side_b = tuple(sorted(shuffled[half:]))
    return FaultPlan(
        partitions=(Partition(sides=(side_a, side_b), start=0.6, heal_at=4.0),)
    )


def _plan_lossy_links(
    scenario: Scenario, cluster: AtumCluster, rng: random.Random
) -> FaultPlan:
    return FaultPlan(links=(LinkFault(loss=0.05),))


def _plan_corrupt_links(
    scenario: Scenario, cluster: AtumCluster, rng: random.Random
) -> FaultPlan:
    """Bit-flip a fraction of all traffic; receivers must detect and discard."""
    return FaultPlan(links=(LinkFault(corrupt=0.05),))


def _plan_delay_spike(
    scenario: Scenario, cluster: AtumCluster, rng: random.Random
) -> FaultPlan:
    return FaultPlan(
        links=(LinkFault(extra_delay=0.05, jitter=0.05, start=0.5, stop=4.0),)
    )


def _plan_dup_storm(
    scenario: Scenario, cluster: AtumCluster, rng: random.Random
) -> FaultPlan:
    return FaultPlan(links=(LinkFault(duplicate=0.25),))


def _behaviour_plan(
    scenario: Scenario,
    cluster: AtumCluster,
    rng: random.Random,
    behaviour: str,
    start: float = 0.0,
    stop: Optional[float] = None,
) -> FaultPlan:
    """Byzantine behaviour on a per-vgroup strict minority of nodes."""
    chosen = select_byzantine_per_group(
        cluster.engine.groups.values(), scenario.fault_fraction, rng
    )
    return FaultPlan(
        nodes=tuple(
            NodeFault(address=address, behaviour=behaviour, start=start, stop=stop)
            for address in chosen
        )
    )


def _plan_silent_minority(
    scenario: Scenario, cluster: AtumCluster, rng: random.Random
) -> FaultPlan:
    return _behaviour_plan(scenario, cluster, rng, "silent")


def _plan_equivocators(
    scenario: Scenario, cluster: AtumCluster, rng: random.Random
) -> FaultPlan:
    return _behaviour_plan(scenario, cluster, rng, "equivocate")


def _plan_evict_attack(
    scenario: Scenario, cluster: AtumCluster, rng: random.Random
) -> FaultPlan:
    chosen = select_byzantine_per_group(
        cluster.engine.groups.values(), scenario.fault_fraction, rng
    )
    return FaultPlan(
        nodes=tuple(
            NodeFault(
                address=address,
                behaviour="evict_attack",
                start=0.0,
                attack_period=scenario.heartbeat_period * 2.0,
            )
            for address in chosen
        )
    )


def _plan_rejoin_attack(
    scenario: Scenario, cluster: AtumCluster, rng: random.Random
) -> FaultPlan:
    """The adaptive join-leave coalition (ROADMAP's churn attack).

    The coalition starts spread out — one member per vgroup, in random
    vgroup order, until ``fault_fraction`` of the system is marked (capped
    at each group's strict minority) — and then strategically leaves and
    re-joins trying to pile up in one vgroup.  Random-walk placement plus
    post-operation shuffling is what must keep every vgroup's coalition
    at or below its eviction/agreement threshold.
    """
    # The attack stops well before the workload settles: the point is to
    # measure placement quality under strategic churn, and churning through
    # the final quiescence phase would leave merge/split transients mid-
    # flight at finalize (flagged as size-bound violations by the monitor).
    attack_stop = max(10.0, scenario.broadcasts * scenario.interval + scenario.settle_time - 20.0)
    total = max(2, int(math.floor(scenario.fault_fraction * len(cluster.engine.node_group))))
    views = sorted(cluster.engine.groups.values(), key=lambda view: view.group_id)
    rng.shuffle(views)
    quotas: Dict[str, int] = {}
    chosen: List[str] = []
    while len(chosen) < total:
        progressed = False
        for view in views:
            if len(chosen) >= total:
                break
            taken = quotas.get(view.group_id, 0)
            if taken >= max(1, (view.size - 1) // 2):
                continue
            candidates = [m for m in view.members if m not in chosen]
            if not candidates:
                continue
            chosen.append(rng.choice(sorted(candidates)))
            quotas[view.group_id] = taken + 1
            progressed = True
        if not progressed:
            break
    return FaultPlan(
        nodes=tuple(
            NodeFault(
                address=address,
                behaviour="rejoin_attack",
                start=0.0,
                stop=attack_stop,
                attack_period=2.0,
            )
            for address in sorted(chosen)
        )
    )


def _plan_crash_recover(
    scenario: Scenario, cluster: AtumCluster, rng: random.Random
) -> FaultPlan:
    addresses = sorted(cluster.engine.node_group)
    count = max(1, int(math.floor(scenario.fault_fraction * len(addresses))))
    chosen = sorted(rng.sample(addresses, count))
    return FaultPlan(
        nodes=tuple(
            NodeFault(address=address, behaviour="crash", start=5.0, stop=40.0)
            for address in chosen
        )
    )


def _plan_byz_transfer(
    scenario: Scenario,
    cluster: AtumCluster,
    rng: random.Random,
    behaviours: Tuple[str, ...],
) -> FaultPlan:
    """Recovering laggards vs adversarial state-transfer servers.

    Two composed ingredients: a per-vgroup strict minority of *responder*
    adversaries (``fault_fraction``; they participate normally in every
    protocol and misbehave only when serving ``ckpt.transfer`` requests),
    plus a 15% laggard partition that heals mid-run — the laggards then
    must close their log gaps by fetching checkpointed state from signer
    sets that contain the adversaries.  Laggards are drawn outside the
    responder set so every recovering replica is correct.
    """
    views = sorted(cluster.engine.groups.values(), key=lambda view: view.group_id)
    responders = select_byzantine_per_group(views, scenario.fault_fraction, rng)
    node_faults = tuple(
        NodeFault(
            address=address, behaviour=behaviours[index % len(behaviours)], start=0.0
        )
        for index, address in enumerate(responders)
    )
    taken = set(responders)
    candidates = [a for a in sorted(cluster.engine.node_group) if a not in taken]
    count = max(1, int(math.floor(0.15 * len(cluster.engine.node_group))))
    laggards = tuple(sorted(rng.sample(candidates, min(count, len(candidates)))))
    # The laggard partition must outlast the broadcast injection window:
    # only then do the laggards fall multiple checkpoint intervals behind
    # and have to recover through *state transfer* (the path under attack)
    # rather than a cheap tail view change.
    heal_at = max(4.0, scenario.broadcasts * scenario.interval + 2.0)
    return FaultPlan(
        partitions=(Partition(members=laggards, start=0.6, heal_at=heal_at),),
        nodes=node_faults,
    )


def _plan_byz_transfer_stonewall(
    scenario: Scenario, cluster: AtumCluster, rng: random.Random
) -> FaultPlan:
    return _plan_byz_transfer(scenario, cluster, rng, ("stonewall",))


def _plan_byz_transfer_slow_drip(
    scenario: Scenario, cluster: AtumCluster, rng: random.Random
) -> FaultPlan:
    return _plan_byz_transfer(scenario, cluster, rng, ("slow_drip",))


def _plan_byz_transfer_garbage(
    scenario: Scenario, cluster: AtumCluster, rng: random.Random
) -> FaultPlan:
    """Alternates garbage servers and stale-certificate servers."""
    return _plan_byz_transfer(scenario, cluster, rng, ("garbage_serve", "stale_cert"))


def _plan_split_brain_directory(
    scenario: Scenario, cluster: AtumCluster, rng: random.Random
) -> FaultPlan:
    """Vgroup-aligned split with one displaced straddler.

    The sides follow vgroup boundaries — each side stays a healthy
    sub-system processing its own membership traffic — except for one
    *displaced* node stranded on the side opposite its vgroup.  Its
    co-members (all on the other side) stop hearing its heartbeats, form
    an eviction majority, and the eviction is necessarily **cross-side**:
    the split-brain coordinator defers it into the deciding side's
    directory and the merge must enforce it at heal (evicted-on-either-
    side stays evicted), which is exactly what the directory-convergence
    invariants check.
    """
    views = sorted(cluster.engine.groups.values(), key=lambda view: view.group_id)
    half = max(1, len(views) // 2)
    side_a: set = set()
    for view in views[:half]:
        side_a.update(view.members)
    side_b: set = set()
    for view in views[half:]:
        side_b.update(view.members)
    if side_b:
        displaced = min(side_a)
        side_a.discard(displaced)
        side_b.add(displaced)
    else:
        # Degenerate single-group system: fall back to a plain bisection.
        members = sorted(side_a)
        side_a, side_b = set(members[: len(members) // 2]), set(members[len(members) // 2 :])
    return FaultPlan(
        partitions=(
            Partition(
                sides=(tuple(sorted(side_a)), tuple(sorted(side_b))),
                start=5.0,
                heal_at=25.0,
            ),
        )
    )


def _plan_rejoin_eviction(
    scenario: Scenario, cluster: AtumCluster, rng: random.Random
) -> FaultPlan:
    """The join-leave coalition racing the live eviction pipeline.

    Composes the §3.2 rejoin attack with a wave of crash faults on
    non-coalition nodes: heartbeat majorities must evict the crashed nodes
    (and keep them out when they recover under evicted identities) while
    the coalition's strategic churn keeps reshaping the very vgroups doing
    the evicting.
    """
    plan = _plan_rejoin_attack(scenario, cluster, rng)
    coalition = {node_fault.address for node_fault in plan.nodes}
    candidates = [a for a in sorted(cluster.engine.node_group) if a not in coalition]
    count = max(1, int(math.floor(0.08 * len(cluster.engine.node_group))))
    crashed = sorted(rng.sample(candidates, min(count, len(candidates))))
    return plan + FaultPlan(
        nodes=tuple(
            NodeFault(address=address, behaviour="crash", start=5.0, stop=60.0)
            for address in crashed
        )
    )


def _plan_slow_vgroup(
    scenario: Scenario, cluster: AtumCluster, rng: random.Random
) -> FaultPlan:
    """Straggler vgroups: ``fault_fraction`` of the initial groups run 3x slow.

    Group ids are sampled from the t=0 grouping; ids retired by later
    merges simply stop matching, which is the honest model — a straggler
    that gets absorbed stops being a straggler.
    """
    group_ids = sorted(cluster.engine.groups)
    count = max(1, int(math.floor(scenario.fault_fraction * len(group_ids))))
    chosen = tuple(sorted(rng.sample(group_ids, min(count, len(group_ids)))))
    return FaultPlan(slowdowns=(GroupSlowdown(groups=chosen, factor=3.0),))


def _plan_kitchen_sink(
    scenario: Scenario, cluster: AtumCluster, rng: random.Random
) -> FaultPlan:
    """Partition + lossy links + a silent minority, composed."""
    return (
        _plan_partition_heal(scenario, cluster, rng)
        + _plan_lossy_links(scenario, cluster, rng)
        + _behaviour_plan(scenario, cluster, rng, "silent")
    )


def _plan_epoch_crossing(
    scenario: Scenario, cluster: AtumCluster, rng: random.Random
) -> FaultPlan:
    """Isolate one replica of the largest vgroup across TWO reconfigurations.

    A member of the largest vgroup is cut off alone (side-preserving, so
    its broadcasts still count toward the delivery bound) while two of its
    co-members leave the system.  Each leave advances the vgroup's epoch,
    so by the heal the laggard's certified state is two epochs stale and
    catching up requires verifying a chain of quorum-signed
    epoch-transition records — the ISSUE-7 recovery path.  Scenarios
    running this plan should set ``shuffle=False``: shuffling would
    re-home the survivors on each leave and dissolve the very group whose
    transition chain is under test.
    """
    engine = cluster.engine
    group_id = max(
        sorted(engine.groups), key=lambda gid: len(engine.groups[gid].members)
    )
    members = sorted(engine.groups[group_id].members)
    laggard = members[0]
    leavers = members[1:3] if len(members) >= 5 else []
    others = tuple(
        address for address in sorted(cluster.engine.node_group) if address != laggard
    )
    for when, leaver in zip((10.0, 14.0), leavers):

        def leave(address=leaver):
            try:
                cluster.engine.leave(address)
            except MembershipError:
                # Already gone — churn or an earlier fault removed it.
                cluster.sim.metrics.increment("faults.plan_leave_skipped")

        cluster.sim.schedule(when, leave, tag="plan.epoch_crossing.leave")
    return FaultPlan(
        partitions=(
            Partition(sides=(others, (laggard,)), start=5.0, heal_at=18.0),
        )
    )


def _plan_overlapping_splits(
    scenario: Scenario, cluster: AtumCluster, rng: random.Random
) -> FaultPlan:
    """Two concurrent, *overlapping* side-preserving splits.

    A random bisection opens first; while it is still in force a parity
    bisection (even vs odd ranks) opens over the same node set, so each
    node is constrained by the intersection of two independent cuts.  The
    splits heal in the order they opened, exercising the multi-split
    coordinator's cascaded, order-independent reconciliation.
    """
    addresses = sorted(cluster.engine.node_group)
    shuffled = list(addresses)
    rng.shuffle(shuffled)
    half = len(shuffled) // 2
    random_cut = (tuple(sorted(shuffled[:half])), tuple(sorted(shuffled[half:])))
    parity_cut = (tuple(addresses[0::2]), tuple(addresses[1::2]))
    return FaultPlan(
        partitions=(
            Partition(sides=random_cut, start=0.6, heal_at=6.0),
            Partition(sides=parity_cut, start=2.0, heal_at=9.0),
        )
    )


PLAN_BUILDERS: Dict[str, Callable[[Scenario, AtumCluster, random.Random], FaultPlan]] = {
    "none": _plan_none,
    "partition_heal": _plan_partition_heal,
    "two_sided_split": _plan_two_sided_split,
    "lossy_links": _plan_lossy_links,
    "corrupt_links": _plan_corrupt_links,
    "delay_spike": _plan_delay_spike,
    "dup_storm": _plan_dup_storm,
    "silent_minority": _plan_silent_minority,
    "equivocators": _plan_equivocators,
    "evict_attack": _plan_evict_attack,
    "rejoin_attack": _plan_rejoin_attack,
    "crash_recover": _plan_crash_recover,
    "kitchen_sink": _plan_kitchen_sink,
    "byz_transfer_stonewall": _plan_byz_transfer_stonewall,
    "byz_transfer_slow_drip": _plan_byz_transfer_slow_drip,
    "byz_transfer_garbage": _plan_byz_transfer_garbage,
    "split_brain_directory": _plan_split_brain_directory,
    "rejoin_eviction": _plan_rejoin_eviction,
    "slow_vgroup": _plan_slow_vgroup,
    "epoch_crossing": _plan_epoch_crossing,
    "overlapping_splits": _plan_overlapping_splits,
}


# ------------------------------------------------------------------ scenarios


def _default_scenarios() -> Dict[str, Scenario]:
    entries = [
        Scenario(name="broadcast/none", workload="broadcast", plan="none"),
        Scenario(
            name="broadcast/partition_heal",
            workload="broadcast",
            plan="partition_heal",
            fault_fraction=0.2,
            # The partition is drawn over the whole system, so an unlucky
            # vgroup can lose its majority and stall broadcasts originating
            # there until the heal.  Anti-entropy repairs exactly that:
            # after the heal, digest exchange re-requests what was missed,
            # so every broadcast by a connected correct origin reaches every
            # correct node — the bound is the paper's full 1.0.
            delivery_bound=1.0,
            antientropy=True,
        ),
        # Side-preserving splits: both sides stay internally live, diverge,
        # and must reconcile to full delivery after the heal — under the
        # synchronous engine and under PBFT (where view changes and the
        # (g-1)/3 threshold do the intra-group catching up).
        Scenario(
            name="broadcast/two_sided_split",
            workload="broadcast",
            plan="two_sided_split",
            fault_fraction=0.5,
            delivery_bound=1.0,
            antientropy=True,
        ),
        Scenario(
            name="broadcast/two_sided_split_pbft",
            workload="broadcast",
            plan="two_sided_split",
            fault_fraction=0.5,
            delivery_bound=1.0,
            antientropy=True,
            smr="async",
            settle_time=40.0,
        ),
        # Checkpoint-enabled PBFT rows are the liveness tier: on top of the
        # 1.0 delivery bound they demand per-vgroup log *equality* at
        # quiescence — an isolated-then-healed replica with no pending
        # requests must close its log gap through checkpoint announces +
        # state transfer (repro.smr.checkpoint), not merely stay safe.
        Scenario(
            name="broadcast/isolated_catchup_pbft",
            workload="broadcast",
            plan="partition_heal",
            fault_fraction=0.15,
            delivery_bound=1.0,
            antientropy=True,
            smr="async",
            checkpoint_interval=2,
            settle_time=50.0,
            # The unfaulted baseline for catch-up latency: every transfer
            # is served by a correct responder on the first attempt.
            catchup_bound=15.0,
        ),
        # Byzantine state-transfer servers (the adversarial-recovery trio):
        # a per-vgroup minority of responders participates normally in
        # every protocol — so they legitimately enter the certifier sets
        # recovering replicas fetch state from — and attacks only the
        # serving path.  The request layer's rotation + scoreboard must
        # keep catch-up latency inside ``catchup_bound`` (the analytical
        # rotation bound is reported next to it as ``catchup_theory``),
        # and the equality bar still holds: every correct laggard closes
        # its gap despite stonewalling, deadline-grazing slow-drips,
        # tampered operation bodies or stale certificates.
        Scenario(
            name="broadcast/byz_transfer_stonewall",
            workload="broadcast",
            plan="byz_transfer_stonewall",
            fault_fraction=0.34,
            broadcasts=48,
            interval=0.25,
            delivery_bound=1.0,
            antientropy=True,
            smr="async",
            checkpoint_interval=2,
            settle_time=60.0,
            catchup_bound=30.0,
        ),
        Scenario(
            name="broadcast/byz_transfer_slow_drip",
            workload="broadcast",
            plan="byz_transfer_slow_drip",
            fault_fraction=0.34,
            broadcasts=48,
            interval=0.25,
            delivery_bound=1.0,
            antientropy=True,
            smr="async",
            checkpoint_interval=2,
            settle_time=60.0,
            catchup_bound=30.0,
        ),
        Scenario(
            name="broadcast/byz_transfer_garbage",
            workload="broadcast",
            plan="byz_transfer_garbage",
            fault_fraction=0.34,
            broadcasts=48,
            interval=0.25,
            delivery_bound=1.0,
            antientropy=True,
            smr="async",
            checkpoint_interval=2,
            settle_time=60.0,
            catchup_bound=30.0,
        ),
        Scenario(
            name="broadcast/split_stall_pbft",
            workload="broadcast",
            plan="two_sided_split",
            fault_fraction=0.5,
            delivery_bound=1.0,
            antientropy=True,
            smr="async",
            checkpoint_interval=2,
            settle_time=50.0,
        ),
        # Sustained load with a short interval: checkpoints form and
        # garbage-collect the protocol log continuously while the equality
        # bound still holds — GC must never eat operations a replica needs.
        Scenario(
            name="broadcast/checkpoint_gc_pbft",
            workload="broadcast",
            plan="none",
            broadcasts=16,
            interval=0.25,
            delivery_bound=1.0,
            antientropy=True,
            smr="async",
            checkpoint_interval=3,
            settle_time=40.0,
        ),
        # ISSUE-7 epoch-crossing recovery: one replica of the largest
        # vgroup is cut off alone while two co-members leave, so its only
        # certified checkpoint is two epochs stale by the heal and catch-up
        # must verify the quorum-signed epoch-transition chain.  Shuffling
        # is off so the reconfiguring vgroup keeps a stable core (see
        # _plan_epoch_crossing); the split is side-preserving, so the full
        # 1.0 delivery bound still applies.
        Scenario(
            name="broadcast/epoch_crossing_catchup",
            workload="broadcast",
            plan="epoch_crossing",
            fault_fraction=0.05,
            broadcasts=16,
            interval=0.25,
            delivery_bound=1.0,
            antientropy=True,
            smr="async",
            checkpoint_interval=2,
            settle_time=50.0,
            shuffle=False,
        ),
        # Two overlapping side-preserving splits with cascaded heals: every
        # node is constrained by the intersection of two independent cuts,
        # and the multi-split coordinator must reconcile the directory and
        # delivery state as each cut heals in turn.
        Scenario(
            name="broadcast/overlapping_splits",
            workload="broadcast",
            plan="overlapping_splits",
            delivery_bound=1.0,
            antientropy=True,
            settle_time=45.0,
        ),
        # byz_transfer_garbage with the adaptive quarantine threshold: the
        # observed per-window fault rate tightens the quarantine trigger
        # under the garbage storm, so forgers are benched faster while the
        # same delivery/catch-up bounds hold.
        Scenario(
            name="broadcast/adaptive_quarantine",
            workload="broadcast",
            plan="byz_transfer_garbage",
            fault_fraction=0.34,
            broadcasts=48,
            interval=0.25,
            delivery_bound=1.0,
            antientropy=True,
            smr="async",
            checkpoint_interval=2,
            settle_time=60.0,
            catchup_bound=30.0,
            adaptive_quarantine=True,
        ),
        Scenario(
            name="broadcast/lossy_links",
            workload="broadcast",
            plan="lossy_links",
            delivery_bound=0.9,
        ),
        Scenario(name="broadcast/delay_spike", workload="broadcast", plan="delay_spike"),
        Scenario(
            name="broadcast/delay_spike_pbft",
            workload="broadcast",
            plan="delay_spike",
            smr="async",
            settle_time=40.0,
        ),
        # Corrupted shares fail payload-digest verification and are dropped
        # before they can pollute accumulation state; the effect on delivery
        # is at worst that of an equal loss rate.
        Scenario(
            name="broadcast/corrupt_links",
            workload="broadcast",
            plan="corrupt_links",
            delivery_bound=0.9,
        ),
        Scenario(name="broadcast/dup_storm", workload="broadcast", plan="dup_storm"),
        # Per-vgroup Byzantine quotas are floor(fraction * size) capped to a
        # strict minority; with the matrix's vgroups of 4-6 members a 0.25
        # fraction marks exactly one member of most vgroups.
        Scenario(
            name="broadcast/silent_minority",
            workload="broadcast",
            plan="silent_minority",
            fault_fraction=0.25,
        ),
        Scenario(
            name="broadcast/equivocators",
            workload="broadcast",
            plan="equivocators",
            fault_fraction=0.25,
        ),
        Scenario(
            name="broadcast/evict_attack",
            workload="broadcast",
            plan="evict_attack",
            fault_fraction=0.25,
            heartbeats=True,
            settle_time=40.0,
        ),
        # The compound-stress scenario deliberately exceeds the per-vgroup
        # fault model (a random partition plus a silent minority can strip a
        # vgroup of its correct majority), so only the *safety* invariants
        # are guaranteed — delivery is best-effort and the bound is loose.
        Scenario(
            name="broadcast/kitchen_sink",
            workload="broadcast",
            plan="kitchen_sink",
            fault_fraction=0.25,
            delivery_bound=0.25,
        ),
        # The ROADMAP's join-leave attack: an adaptive coalition churns
        # itself trying to concentrate in one vgroup.  Run in the paper's
        # regime — vgroups near k*log2(N), a ~10% adversary — where
        # random-walk placement + shuffling must keep every vgroup's
        # coalition at or below its eviction/agreement threshold
        # (attack_threshold = maximum allowed excess over (g-1)//2; 0 means
        # the coalition never outgrows a strict minority anywhere).  With
        # the matrix's toy 3..6-member vgroups this bound *should* fail —
        # that is the analytical vgroup-failure probability, not a bug —
        # which is why this row overrides gmin/gmax.
        Scenario(
            name="broadcast/rejoin_attack",
            workload="broadcast",
            plan="rejoin_attack",
            nodes=50,
            fault_fraction=0.08,
            gmin=6,
            gmax=12,
            settle_time=120.0,
            delivery_bound=0.8,
            antientropy=True,
            attack_threshold=0.0,
        ),
        # Split-brain membership reconciliation: a vgroup-aligned split with
        # one displaced straddler.  Each side keeps processing membership
        # traffic; the straddler's co-members (all on the other side) form
        # an eviction majority whose execution must be *deferred* as a
        # cross-side eviction and enforced at the heal's directory merge —
        # the directory-convergence invariants replay the merge decision.
        Scenario(
            name="broadcast/split_brain_directory",
            workload="broadcast",
            plan="split_brain_directory",
            heartbeats=True,
            antientropy=True,
            settle_time=45.0,
            # The displaced straddler's vgroup loses a member mid-run and
            # the split covers everyone for 20 simulated seconds, so the
            # delivery bound is necessarily loose; the scenario's real
            # assertions are the directory invariants.
            delivery_bound=0.5,
        ),
        # The join-leave coalition racing the live eviction pipeline
        # (rejoin_attack × crash-driven evictions), in the paper's vgroup
        # regime.  The coalition must stay a strict minority everywhere
        # while heartbeat majorities evict crashed nodes and keep them out
        # after recovery.
        Scenario(
            name="broadcast/rejoin_eviction",
            workload="broadcast",
            plan="rejoin_eviction",
            nodes=50,
            fault_fraction=0.08,
            gmin=6,
            gmax=12,
            heartbeats=True,
            settle_time=120.0,
            delivery_bound=0.7,
            antientropy=True,
            attack_threshold=0.0,
        ),
        Scenario(name="churn/none", workload="churn", plan="none", nodes=40),
        # Anti-entropy racing continuous churn: repair runs while vgroups
        # split, merge and shuffle under it, with broadcasts interleaved so
        # there is state to repair (joiners start with empty delivery
        # state).  The AE store must stay bounded by the settled-broadcast
        # GC + summary window while the monitor stays clean.
        Scenario(
            name="churn/antientropy",
            workload="churn_broadcast",
            plan="none",
            nodes=40,
            antientropy=True,
            churn_rate=10.0,
            churn_duration=60.0,
            broadcasts=8,
            settle_time=30.0,
            delivery_bound=0.9,
        ),
        # PBFT checkpointing under continuous churn: every engine-level
        # leave reconfigures some vgroup, so certificates constantly cross
        # epoch boundaries and the transition records formed per
        # reconfiguration are what keep state transfer serving.  Exempt
        # from the log-equality check (churn_broadcast always is) — the
        # assertions are the delivery bound plus a clean monitor.
        Scenario(
            name="churn/epoch_checkpoint",
            workload="churn_broadcast",
            plan="none",
            nodes=40,
            smr="async",
            checkpoint_interval=2,
            antientropy=True,
            churn_rate=10.0,
            churn_duration=60.0,
            # Dense enough that vgroups certify checkpoints *between*
            # membership operations — otherwise reconfigurations have no
            # certificate to carry and the row never crosses an epoch.
            broadcasts=24,
            settle_time=30.0,
            delivery_bound=0.9,
        ),
        # Heartbeats are on so the crash actually bites: crashed nodes stop
        # heartbeating, get suspected and evicted (engine-level churn alone
        # never consults node actors), and the recovered nodes must stay out
        # under their evicted identities while churn keeps reshaping groups.
        Scenario(
            name="churn/crash_recover",
            workload="churn",
            plan="crash_recover",
            nodes=40,
            fault_fraction=0.1,
            heartbeats=True,
        ),
        # Straggler vgroups under continuous churn: a quarter of the t=0
        # vgroups execute membership agreements 3x slower.  Churn must
        # still complete (slow, not stuck) and the row reports the
        # straggler-induced operation-latency penalty.
        Scenario(
            name="churn/slow_vgroup",
            workload="churn",
            plan="slow_vgroup",
            nodes=40,
            fault_fraction=0.25,
        ),
        Scenario(name="growth/none", workload="growth", plan="none", nodes=12),
        Scenario(
            name="growth/silent_minority",
            workload="growth",
            plan="silent_minority",
            nodes=12,
            fault_fraction=0.25,
        ),
        # A/B: churn storm at 3x the antientropy row's rate, static
        # parameters vs AdaptiveGroupSize + AdaptiveHeartbeat.  The pair
        # differs only in ``policies``; both rows carry the same delivery
        # bound, so the matrix itself demonstrates that adaptation is no
        # worse than the deployment-tuned static configuration while the
        # adaptive row additionally proves it *did* adapt
        # (min_policy_transitions) with a clean monitor.
        Scenario(
            name="churn/storm_static",
            workload="churn_broadcast",
            plan="none",
            nodes=40,
            heartbeats=True,
            antientropy=True,
            churn_rate=30.0,
            churn_duration=60.0,
            broadcasts=8,
            settle_time=30.0,
            delivery_bound=0.85,
        ),
        Scenario(
            name="churn/storm_adaptive",
            workload="churn_broadcast",
            plan="none",
            nodes=40,
            heartbeats=True,
            antientropy=True,
            churn_rate=30.0,
            churn_duration=60.0,
            broadcasts=8,
            settle_time=30.0,
            delivery_bound=0.85,
            policies=("group_size", "heartbeat"),
            min_policy_transitions=2,
        ),
        # A/B: flash-crowd joins (the system doubles in half a minute via
        # actor-level joins), static vs AdaptiveGroupSize + AdaptiveGossip
        # + AdaptiveAntiEntropy.  Same bound on both rows; the adaptive row
        # widens vgroups under the join wave and throttles gossip under the
        # delivery load.
        Scenario(
            name="flash/join_storm_static",
            workload="flash_crowd",
            plan="none",
            nodes=30,
            growth_target=60,
            churn_duration=30.0,
            broadcasts=8,
            settle_time=30.0,
            antientropy=True,
            delivery_bound=0.85,
        ),
        Scenario(
            name="flash/join_storm_adaptive",
            workload="flash_crowd",
            plan="none",
            nodes=30,
            growth_target=60,
            churn_duration=30.0,
            broadcasts=8,
            settle_time=30.0,
            antientropy=True,
            delivery_bound=0.85,
            policies=("group_size", "gossip", "antientropy"),
            min_policy_transitions=1,
        ),
    ]
    return {scenario.name: scenario for scenario in entries}


SCENARIOS: Dict[str, Scenario] = _default_scenarios()

#: The matrix CI runs: every default scenario (≥ 8 plan × workload combos).
SMALL_MATRIX: List[str] = list(SCENARIOS)


def _bench_scale() -> int:
    """Global workload scale factor (``ATUM_BENCH_SCALE``, default 1).

    A malformed value raises instead of silently downgrading: the nightly
    job's whole point is deployment-scale coverage, and a typo'd env var
    must not shrink the run while the artifact still claims 800 nodes.
    """
    raw = os.environ.get("ATUM_BENCH_SCALE", "1")
    try:
        return max(1, int(raw))
    except ValueError:
        raise ValueError(
            f"ATUM_BENCH_SCALE must be an integer, got {raw!r}"
        ) from None


def _nightly_scenarios() -> Dict[str, Scenario]:
    """The deployment-scale slice run nightly (not per-PR).

    Node counts are ``400 * ATUM_BENCH_SCALE``, matching the paper's
    800-node deployments at the nightly workflow's ``ATUM_BENCH_SCALE=2``.
    """
    nodes = 400 * _bench_scale()
    entries = [
        Scenario(
            name="nightly/partition_heal",
            workload="broadcast",
            plan="partition_heal",
            nodes=nodes,
            fault_fraction=0.2,
            broadcasts=8,
            settle_time=60.0,
            delivery_bound=1.0,
            antientropy=True,
        ),
        Scenario(
            name="nightly/two_sided_split",
            workload="broadcast",
            plan="two_sided_split",
            nodes=nodes,
            fault_fraction=0.5,
            broadcasts=8,
            settle_time=60.0,
            delivery_bound=1.0,
            antientropy=True,
        ),
        Scenario(
            name="nightly/two_sided_split_pbft",
            workload="broadcast",
            plan="two_sided_split",
            nodes=nodes,
            fault_fraction=0.5,
            broadcasts=8,
            settle_time=80.0,
            delivery_bound=1.0,
            antientropy=True,
            smr="async",
        ),
        Scenario(
            name="nightly/silent_minority",
            workload="broadcast",
            plan="silent_minority",
            nodes=nodes,
            fault_fraction=0.25,
            broadcasts=8,
            settle_time=60.0,
        ),
        # Deployment-scale checkpoint catch-up: isolated replicas must reach
        # log *equality* (not just delivery) after the heal, via checkpoint
        # announces + state transfer.
        Scenario(
            name="nightly/checkpoint_catchup",
            workload="broadcast",
            plan="partition_heal",
            nodes=nodes,
            fault_fraction=0.15,
            broadcasts=8,
            settle_time=80.0,
            delivery_bound=1.0,
            antientropy=True,
            smr="async",
            checkpoint_interval=2,
        ),
        # Deployment-scale adversarial recovery: hundreds of laggards catch
        # up through signer sets salted with stonewalling responders; the
        # rotation bound must hold at scale.
        Scenario(
            name="nightly/byzantine_transfer",
            workload="broadcast",
            plan="byz_transfer_stonewall",
            nodes=nodes,
            fault_fraction=0.34,
            # Heavy injection: with ~N/4.5 vgroups, a thin workload leaves
            # most laggard groups without a certified checkpoint to
            # transfer, and the catch-up bound would fail vacuously.
            broadcasts=160,
            interval=0.1,
            settle_time=80.0,
            delivery_bound=1.0,
            antientropy=True,
            smr="async",
            checkpoint_interval=2,
            catchup_bound=40.0,
        ),
        # Deployment-scale split-brain reconciliation: vgroup-aligned
        # sides, a displaced straddler, deferred cross-side eviction
        # enforced by the directory merge at heal.
        Scenario(
            name="nightly/split_brain_directory",
            workload="broadcast",
            plan="split_brain_directory",
            nodes=nodes,
            heartbeats=True,
            broadcasts=8,
            settle_time=60.0,
            delivery_bound=0.5,
            antientropy=True,
        ),
        # Deployment-scale rejoin × eviction-pipeline race.  Unlike the
        # small-matrix row (threshold 0), the composed eviction wave may
        # transiently concentrate the coalition one past the strict
        # minority: evicting crashed *correct* members tightens the
        # (size-1)//2 threshold while the undersized vgroup awaits its
        # merge.  Excess 1 still keeps the coalition below every eviction
        # majority; anything beyond fails the run.
        Scenario(
            name="nightly/rejoin_eviction",
            workload="broadcast",
            plan="rejoin_eviction",
            nodes=nodes,
            fault_fraction=0.05,
            gmin=6,
            gmax=12,
            heartbeats=True,
            broadcasts=8,
            settle_time=120.0,
            delivery_bound=0.7,
            antientropy=True,
            attack_threshold=1.0,
        ),
        # Deployment-scale join-leave attack: the coalition must never
        # outgrow any vgroup's strict minority despite hundreds of
        # strategic re-join attempts.
        Scenario(
            name="nightly/rejoin_attack",
            workload="broadcast",
            plan="rejoin_attack",
            nodes=nodes,
            fault_fraction=0.05,
            gmin=6,
            gmax=12,
            broadcasts=8,
            settle_time=80.0,
            delivery_bound=0.8,
            antientropy=True,
            attack_threshold=0.0,
        ),
        # Deployment-scale epoch-crossing recovery: the isolated replica of
        # the largest vgroup re-anchors a two-epoch-stale certificate via
        # the quorum-signed transition chain while hundreds of other groups
        # keep deciding.
        Scenario(
            name="nightly/epoch_crossing",
            workload="broadcast",
            plan="epoch_crossing",
            nodes=nodes,
            fault_fraction=0.05,
            broadcasts=16,
            interval=0.25,
            settle_time=80.0,
            delivery_bound=1.0,
            antientropy=True,
            smr="async",
            checkpoint_interval=2,
            shuffle=False,
        ),
        # Deployment-scale churn storm with adaptive parameters: hundreds
        # of nodes churning while AdaptiveGroupSize widens the vgroup
        # bounds and AdaptiveHeartbeat stretches the suspicion deadline —
        # the self-tuning configuration must adapt (min_policy_transitions)
        # and stay violation-free at the paper's deployment scale.
        Scenario(
            name="nightly/churn_storm_adaptive",
            workload="churn_broadcast",
            plan="none",
            nodes=nodes,
            heartbeats=True,
            antientropy=True,
            churn_rate=60.0,
            churn_duration=90.0,
            broadcasts=16,
            settle_time=60.0,
            delivery_bound=0.85,
            policies=("group_size", "heartbeat"),
            min_policy_transitions=2,
        ),
        # Deployment-scale overlapping splits: two concurrent cuts over
        # hundreds of nodes, healed in sequence through the multi-split
        # coordinator.
        Scenario(
            name="nightly/overlapping_splits",
            workload="broadcast",
            plan="overlapping_splits",
            nodes=nodes,
            broadcasts=8,
            settle_time=60.0,
            delivery_bound=1.0,
            antientropy=True,
        ),
    ]
    return {scenario.name: scenario for scenario in entries}


#: The deployment-scale slice the scheduled nightly workflow runs.  The
#: entries themselves are served by :func:`_resolve` (through
#: :func:`_nightly_scenarios`) at run time, NOT stored in ``SCENARIOS``,
#: so their node counts honour ``ATUM_BENCH_SCALE`` when the run starts
#: rather than when this module was imported.  The name list is static so
#: importing this module never consults the environment (a malformed
#: ``ATUM_BENCH_SCALE`` should fail the *run*, not the import).
NIGHTLY_MATRIX: List[str] = [
    "nightly/byzantine_transfer",
    "nightly/checkpoint_catchup",
    "nightly/churn_storm_adaptive",
    "nightly/epoch_crossing",
    "nightly/overlapping_splits",
    "nightly/partition_heal",
    "nightly/rejoin_attack",
    "nightly/rejoin_eviction",
    "nightly/silent_minority",
    "nightly/split_brain_directory",
    "nightly/two_sided_split",
    "nightly/two_sided_split_pbft",
]


def _catchup_theory_for(scenario: Scenario) -> Optional[Dict[str, float]]:
    """The analytical rotation bound for Byzantine-responder scenarios.

    Worst case per vgroup: the per-group adversary quota
    ``min(floor(fraction * gmax), (gmax - 1) // 2)`` responders all queried
    before the first correct server, each burning one (backed-off, jittered)
    request timeout.  Pure function of the scenario so matrix rows can carry
    it without re-running anything.
    """
    if not scenario.plan.startswith("byz_transfer"):
        return None
    policy = RequestPolicy()
    quota = min(
        int(math.floor(scenario.fault_fraction * scenario.gmax)),
        (scenario.gmax - 1) // 2,
    )
    return catchup_latency_bound(
        group_size=scenario.gmax,
        byzantine_responders=quota,
        base_timeout=policy.base_timeout,
        backoff_factor=policy.backoff_factor,
        max_timeout=policy.max_timeout,
        jitter=policy.jitter,
    )


def _correct_origin_fractions(
    cluster: AtumCluster,
    records: Sequence[Tuple[str, str]],
    faulted: frozenset,
) -> List[float]:
    """Delivery fractions of the ``(bcast_id, origin)`` records whose origin
    stayed correct.

    The paper's delivery bound covers broadcasts *by correct nodes*; a
    broadcast originated by a node the plan later silenced, crashed or
    partitioned carries no guarantee (its SMR phase may never complete), so
    it is excluded from the bound — it still shows up in the run's delivery
    counters, just not in the bound check.
    """
    fractions: List[float] = []
    for bcast_id, origin in records:
        node = cluster.nodes.get(origin)
        if origin in faulted or (node is not None and not node.is_correct):
            continue
        fractions.append(cluster.delivery_fraction(bcast_id))
    return fractions


def _workload_broadcast_records(workload: BroadcastWorkload) -> List[Tuple[str, str]]:
    """(bcast_id, origin) pairs of a broadcast workload's emissions.

    bcast ids are ``bc-<address>-<counter>`` (addresses may contain dashes).
    """
    return [
        (bcast_id, bcast_id[3 : bcast_id.rfind("-")])
        for bcast_id, _started_at in workload.broadcasts
    ]


def _resolve(scenario: "str | Scenario") -> Scenario:
    if isinstance(scenario, Scenario):
        return scenario
    if scenario.startswith("nightly/"):
        # Re-derive nightly entries at resolve time so ATUM_BENCH_SCALE is
        # honoured when the run starts, not when this module was imported.
        nightly = _nightly_scenarios()
        if scenario in nightly:
            return nightly[scenario]
    try:
        return SCENARIOS[scenario]
    except KeyError:
        raise ValueError(
            f"unknown scenario {scenario!r}; known: "
            f"{sorted(SCENARIOS) + NIGHTLY_MATRIX}"
        ) from None


# ----------------------------------------------------------------------- runs


def run_scenario(seed: int, scenario: "str | Scenario") -> Dict[str, Any]:
    """Run one seeded scenario to quiescence; returns its robustness row."""
    scenario = _resolve(scenario)
    params = AtumParameters(
        hc=3,
        rwl=5,
        gmax=scenario.gmax,
        gmin=scenario.gmin,
        round_duration=0.5,
        heartbeat_period=scenario.heartbeat_period,
        smr_kind=SmrKind.ASYNC if scenario.smr == "async" else SmrKind.SYNC,
        checkpoint_interval=scenario.checkpoint_interval,
        adaptive_quarantine=scenario.adaptive_quarantine,
    )
    cluster = AtumCluster(
        params,
        seed=seed,
        enable_heartbeats=scenario.heartbeats,
        antientropy=AntiEntropyConfig() if scenario.antientropy else None,
        shuffle_enabled=scenario.shuffle,
    )
    # Replay tolerates checker errors: a broken engine must surface as a
    # "structure" violation in this scenario's matrix row (and fail the
    # matrix), not abort the whole shard.
    monitor = InvariantMonitor(InvariantConfig(tolerate_check_errors=True))
    cluster.attach_monitor(monitor)
    # Pipeline-level event counters ride the same chain.  Observation only
    # (no RNG, no timers), so the matrix rows stay byte-identical.
    cluster.middleware_chain().add(MetricsTap())
    addresses = [f"n{i}" for i in range(scenario.nodes)]
    cluster.build_static(addresses)
    # Adaptive policies join the chain *after* the static build: the
    # initial population must not read as a churn spike, and a policies=()
    # row arms no timers and stays byte-identical to pre-policy builds.
    for key in scenario.policies:
        cluster.middleware_chain().add(POLICY_BUILDERS[key]())

    rng = named_stream(f"faults.select:{scenario.name}", master_seed=seed)
    plan = PLAN_BUILDERS[scenario.plan](scenario, cluster, rng)
    apply_plan(cluster, plan, monitor=monitor)

    mean_delivery_fraction: Optional[float] = None
    min_delivery_fraction: Optional[float] = None
    completion_ratio: Optional[float] = None
    # (bcast_id, origin) pairs of whichever workload emitted broadcasts;
    # aggregated into the delivery-bound fractions after the workload runs.
    broadcast_records: List[Tuple[str, str]] = []

    if scenario.workload == "broadcast":
        workload = BroadcastWorkload(
            cluster,
            BroadcastWorkloadConfig(
                count=scenario.broadcasts,
                interval=scenario.interval,
                settle_time=scenario.settle_time,
            ),
        )
        workload.run()
        broadcast_records = _workload_broadcast_records(workload)
    elif scenario.workload == "churn":
        churn = ChurnWorkload(
            cluster.engine,
            ChurnConfig(
                rate_per_minute=scenario.churn_rate, duration=scenario.churn_duration
            ),
            # Join through the cluster so newcomers get heartbeating actors.
            join_fn=cluster.join,
        )
        completion_ratio = churn.run().completion_ratio
    elif scenario.workload == "churn_broadcast":
        # Anti-entropy under churn: broadcasts interleave with continuous
        # membership churn, so repair races vgroup splits/merges and must
        # also serve joiners that start with empty delivery state.
        churn_config = ChurnConfig(
            rate_per_minute=scenario.churn_rate, duration=scenario.churn_duration
        )
        churn = ChurnWorkload(cluster.engine, churn_config, join_fn=cluster.join)
        broadcast_records = []

        def fire_broadcast(index: int) -> None:
            members = cluster.correct_member_addresses()
            if members:
                origin = members[index % len(members)]
                broadcast_records.append(
                    (cluster.broadcast(origin, {"churn-bcast": index}), origin)
                )

        horizon = churn_config.warmup + churn_config.duration
        spacing = horizon / (scenario.broadcasts + 1)
        for index in range(scenario.broadcasts):
            cluster.sim.schedule(
                spacing * (index + 1),
                lambda i=index: fire_broadcast(i),
                tag="churn-bcast",
            )
        completion_ratio = churn.run().completion_ratio
        cluster.run_for(scenario.settle_time)
    elif scenario.workload == "flash_crowd":
        # Flash-crowd joins: a burst of *actor-level* joins (cluster.join)
        # compressed into churn_duration seconds, growing the system from
        # ``nodes`` to ``growth_target``, with broadcasts interleaved for
        # the delivery bound.  Distinct from the growth workload, whose
        # engine-level joins create no node actors — here every arrival
        # fires ``on_node_added``, which is the signal the adaptive
        # policies (and their A/B static twin) are being measured on.
        joins = max(0, scenario.growth_target - scenario.nodes)
        burst_start = 5.0
        join_spacing = scenario.churn_duration / max(1, joins)

        def flash_join(index: int) -> None:
            members = cluster.correct_member_addresses()
            contact = members[index % len(members)] if members else None
            try:
                cluster.join(f"fc{index}", contact=contact)
            except MembershipError:
                cluster.sim.metrics.increment("faults.flash_join_failed")

        for index in range(joins):
            cluster.sim.schedule(
                burst_start + join_spacing * index,
                lambda i=index: flash_join(i),
                tag="flash.join",
            )
        broadcast_records = []

        def fire_flash_broadcast(index: int) -> None:
            members = cluster.correct_member_addresses()
            if members:
                origin = members[index % len(members)]
                broadcast_records.append(
                    (cluster.broadcast(origin, {"flash-bcast": index}), origin)
                )

        horizon = burst_start + scenario.churn_duration
        bcast_spacing = horizon / (scenario.broadcasts + 1)
        for index in range(scenario.broadcasts):
            cluster.sim.schedule(
                bcast_spacing * (index + 1),
                lambda i=index: fire_flash_broadcast(i),
                tag="flash-bcast",
            )
        cluster.run_for(horizon + scenario.settle_time)
    elif scenario.workload == "growth":
        growth = GrowthWorkload(
            cluster.engine,
            GrowthConfig(
                target_size=scenario.growth_target,
                join_fraction_per_minute=0.4,
                batch_interval=5.0,
                provisioning_delay=2.0,
                max_duration=4_000.0,
            ),
        )
        growth.run()
    else:
        raise ValueError(f"unknown workload {scenario.workload!r}")

    if broadcast_records:
        fractions = _correct_origin_fractions(
            cluster, broadcast_records, plan.unavailable_addresses()
        )
        if fractions:
            mean_delivery_fraction = sum(fractions) / len(fractions)
            min_delivery_fraction = min(fractions)

    cluster.run_until_membership_quiescent(max_time=120.0)
    if scenario.workload == "broadcast" and scenario.smr == "async":
        # PBFT executes in gap-free sequence order and its view changes
        # carry prepared operations, so per-vgroup decided logs must be
        # prefix-consistent across partitions, splits and heals.  With
        # checkpointing enabled the bar rises to eventual log *equality*:
        # state transfer must have closed every replica's gap by quiescence.
        monitor.check_smr_prefix_consistency(
            cluster, require_equality=scenario.checkpoint_interval > 0
        )
    monitor.finalize()
    summary = monitor.summary()
    metrics = cluster.sim.metrics

    if scenario.workload in ("broadcast", "churn_broadcast", "flash_crowd"):
        # A broadcast scenario that measured no correct-origin broadcast has
        # not demonstrated its bound — never report it as vacuously met.
        delivery_bound_met = (
            mean_delivery_fraction is not None
            and mean_delivery_fraction >= scenario.delivery_bound
        )
    else:
        delivery_bound_met = True

    rejoin_hist = metrics.histogram("faults.rejoin_group_fraction")
    rejoin_max_fraction = rejoin_hist.maximum if rejoin_hist.count else None
    excess_hist = metrics.histogram("faults.rejoin_threshold_excess")
    rejoin_max_excess = excess_hist.maximum if excess_hist.count else None
    attack_bound_met: Optional[bool] = None
    if scenario.attack_threshold is not None:
        # The join-leave coalition must never outgrow the strict-minority
        # eviction/agreement threshold of any vgroup by more than the
        # allowed excess; a vacuous run (no concentration samples) has not
        # demonstrated the bound.
        attack_bound_met = (
            rejoin_max_excess is not None
            and rejoin_max_excess <= scenario.attack_threshold
        )
        delivery_bound_met = delivery_bound_met and attack_bound_met

    catchup_hist = metrics.histogram("smr.checkpoint.catchup_latency")
    catchup_latency_mean = catchup_hist.mean if catchup_hist.count else None
    catchup_latency_max = catchup_hist.maximum if catchup_hist.count else None
    catchup_bound_met: Optional[bool] = None
    if scenario.catchup_bound is not None:
        # A run in which no replica ever completed a catch-up has not
        # demonstrated the bound — vacuous runs fail it.
        catchup_bound_met = (
            catchup_latency_max is not None
            and catchup_latency_max <= scenario.catchup_bound
        )
        delivery_bound_met = delivery_bound_met and catchup_bound_met
    slowdown_hist = metrics.histogram("membership.slowdown_penalty")
    # Observed at every fault-rate window roll; with the static policy the
    # histogram is flat at the configured threshold, with adaptive_quarantine
    # the min shows how far hostile windows tightened it toward the floor.
    quarantine_hist = metrics.histogram("req.quarantine_threshold")

    policy_transitions = metrics.counter("policy.transitions")
    policy_bound_met: Optional[bool] = None
    if scenario.policies:
        # An adaptive row whose policies never adapted is vacuous: the A/B
        # comparison against its static twin would be comparing identical
        # runs while claiming an adaptation result.
        policy_bound_met = policy_transitions >= scenario.min_policy_transitions
        delivery_bound_met = delivery_bound_met and policy_bound_met

    row: Dict[str, Any] = {
        "scenario": scenario.name,
        "workload": scenario.workload,
        "plan": scenario.plan,
        "smr": scenario.smr,
        "antientropy": scenario.antientropy,
        "checkpoint_interval": scenario.checkpoint_interval,
        "attack_threshold": scenario.attack_threshold,
        "attack_bound_met": attack_bound_met,
        "rejoin_max_group_fraction": rejoin_max_fraction,
        "rejoin_max_threshold_excess": rejoin_max_excess,
        "catchup_bound": scenario.catchup_bound,
        "catchup_bound_met": catchup_bound_met,
        "catchup_latency_mean": catchup_latency_mean,
        "catchup_latency_max": catchup_latency_max,
        "catchup_theory": _catchup_theory_for(scenario),
        "slowdown_penalty_mean": slowdown_hist.mean if slowdown_hist.count else None,
        "slowdown_penalty_max": slowdown_hist.maximum if slowdown_hist.count else None,
        "adaptive_quarantine": scenario.adaptive_quarantine,
        "quarantine_threshold_min": (
            quarantine_hist.minimum if quarantine_hist.count else None
        ),
        "quarantine_threshold_mean": (
            quarantine_hist.mean if quarantine_hist.count else None
        ),
        "seed": seed,
        "system_size": cluster.engine.system_size,
        "group_count": cluster.engine.group_count,
        "violations": summary["violations"],
        "violations_by_kind": summary["by_kind"],
        "checks_run": summary["checks_run"],
        "evictions_observed": summary["evictions_observed"],
        "mean_delivery_fraction": mean_delivery_fraction,
        "min_delivery_fraction": min_delivery_fraction,
        "delivery_bound": scenario.delivery_bound,
        "delivery_bound_met": delivery_bound_met,
        "completion_ratio": completion_ratio,
        "counters": {
            "net.messages_lost": metrics.counter("net.messages_lost"),
            "net.messages_partitioned": metrics.counter("net.messages_partitioned"),
            "faults.messages_dropped": metrics.counter("faults.messages_dropped"),
            "faults.messages_duplicated": metrics.counter("faults.messages_duplicated"),
            "faults.messages_delayed": metrics.counter("faults.messages_delayed"),
            "faults.partitions_formed": metrics.counter("faults.partitions_formed"),
            "faults.partitions_healed": metrics.counter("faults.partitions_healed"),
            "faults.evictions_proposed_by_byzantine": metrics.counter(
                "faults.evictions_proposed_by_byzantine"
            ),
            "group.equivocations_sent": metrics.counter("group.equivocations_sent"),
            "faults.messages_corrupted": metrics.counter("faults.messages_corrupted"),
            "group.corrupted_shares_dropped": metrics.counter(
                "group.corrupted_shares_dropped"
            ),
            "net.corrupted_discarded": metrics.counter("net.corrupted_discarded"),
            "group.forged_size_rejected": metrics.counter("group.forged_size_rejected"),
            "ae.summaries_sent": metrics.counter("ae.summaries_sent"),
            "ae.shares_resent": metrics.counter("ae.shares_resent"),
            "ae.reproposals": metrics.counter("ae.reproposals"),
            "ae.store_gc_dropped": metrics.counter("ae.store_gc_dropped"),
            "smr.pbft.view_changes": metrics.counter("smr.pbft.view_changes"),
            "smr.checkpoint.stable": metrics.counter("smr.checkpoint.stable"),
            "smr.checkpoint.slots_gc": metrics.counter("smr.checkpoint.slots_gc"),
            "smr.checkpoint.transfers_completed": metrics.counter(
                "smr.checkpoint.transfers_completed"
            ),
            "smr.checkpoint.ops_installed": metrics.counter(
                "smr.checkpoint.ops_installed"
            ),
            "smr.checkpoint.tail_view_changes": metrics.counter(
                "smr.checkpoint.tail_view_changes"
            ),
            "smr.checkpoint.rejected": metrics.counter("smr.checkpoint.rejected"),
            "smr.checkpoint.state_requests": metrics.counter(
                "smr.checkpoint.state_requests"
            ),
            "smr.checkpoint.epoch_transitions": metrics.counter(
                "smr.checkpoint.epoch_transitions"
            ),
            "smr.checkpoint.anchors_adopted": metrics.counter(
                "smr.checkpoint.anchors_adopted"
            ),
            "req.sent": metrics.counter("req.sent"),
            "req.completed": metrics.counter("req.completed"),
            "req.timeouts": metrics.counter("req.timeouts"),
            "req.garbage_replies": metrics.counter("req.garbage_replies"),
            "req.stale_replies": metrics.counter("req.stale_replies"),
            "req.quarantined": metrics.counter("req.quarantined"),
            "req.gave_up": metrics.counter("req.gave_up"),
            "req.rejected_malformed": metrics.counter("req.rejected_malformed"),
            "faults.transfer_stonewalled": metrics.counter(
                "faults.transfer_stonewalled"
            ),
            "faults.transfer_slow_dripped": metrics.counter(
                "faults.transfer_slow_dripped"
            ),
            "faults.transfer_garbage_served": metrics.counter(
                "faults.transfer_garbage_served"
            ),
            "faults.transfer_stale_served": metrics.counter(
                "faults.transfer_stale_served"
            ),
            "ae.requests_sent": metrics.counter("ae.requests_sent"),
            "ae.retry_storm": metrics.counter("ae.retry_storm"),
            "directory.splits": metrics.counter("directory.splits"),
            "directory.merges": metrics.counter("directory.merges"),
            "directory.joins_recorded": metrics.counter("directory.joins_recorded"),
            "directory.evictions_deferred": metrics.counter(
                "directory.evictions_deferred"
            ),
            "directory.merge_evictions_enforced": metrics.counter(
                "directory.merge_evictions_enforced"
            ),
            "directory.join_revalidations_revoked": metrics.counter(
                "directory.join_revalidations_revoked"
            ),
            "faults.rejoin_joins": metrics.counter("faults.rejoin_joins"),
            "faults.rejoin_leaves": metrics.counter("faults.rejoin_leaves"),
            "membership.joins_completed": metrics.counter("membership.joins_completed"),
            "membership.leaves_completed": metrics.counter("membership.leaves_completed"),
            "membership.evictions_started": metrics.counter("membership.evictions_started"),
        },
    }
    if scenario.policies:
        # Policy columns appear only on adaptive rows: policies=() rows (the
        # whole pre-existing matrix) keep their exact key set, so the
        # regenerated FAULT_MATRIX.json stays byte-identical for them.
        gmax_hist = metrics.histogram("policy.gmax")
        hb_hist = metrics.histogram("policy.heartbeat_period")
        row["policies"] = list(scenario.policies)
        row["min_policy_transitions"] = scenario.min_policy_transitions
        row["policy_transitions"] = policy_transitions
        row["policy_bound_met"] = policy_bound_met
        row["policy_gmax_peak"] = gmax_hist.maximum if gmax_hist.count else None
        row["policy_heartbeat_period_peak"] = hb_hist.maximum if hb_hist.count else None
        row["counters"].update(
            {
                "policy.proposals": metrics.counter("policy.proposals"),
                "policy.transitions": policy_transitions,
                "policy.rejected_bounds": metrics.counter("policy.rejected_bounds"),
                "policy.rejected_rate": metrics.counter("policy.rejected_rate"),
                "policy.rejected_step": metrics.counter("policy.rejected_step"),
                "policy.rejected_oscillation": metrics.counter(
                    "policy.rejected_oscillation"
                ),
                "policy.rejected_coupling": metrics.counter("policy.rejected_coupling"),
            }
        )
    return row


def scenario_shard(seed: int, name: str) -> Dict[str, Any]:
    """Picklable shard for :mod:`repro.sim.runpar`: one seeded scenario run."""
    row = run_scenario(seed, name)
    counters = {
        "scenario.runs": 1.0,
        "scenario.violations": float(row["violations"]),
        "scenario.checks_run": float(row["checks_run"]),
        "scenario.evictions_observed": float(row["evictions_observed"]),
        "scenario.delivery_bound_met": 1.0 if row["delivery_bound_met"] else 0.0,
    }
    counters.update({name: float(value) for name, value in row["counters"].items()})
    histograms: Dict[str, List[float]] = {}
    if row["mean_delivery_fraction"] is not None:
        histograms["scenario.delivery_fraction"] = [row["mean_delivery_fraction"]]
    if row["completion_ratio"] is not None:
        histograms["scenario.completion_ratio"] = [row["completion_ratio"]]
    if row["rejoin_max_group_fraction"] is not None:
        histograms["scenario.rejoin_max_fraction"] = [row["rejoin_max_group_fraction"]]
    if row["rejoin_max_threshold_excess"] is not None:
        histograms["scenario.rejoin_max_excess"] = [row["rejoin_max_threshold_excess"]]
    if row["catchup_latency_max"] is not None:
        histograms["scenario.catchup_latency"] = [row["catchup_latency_max"]]
    if row["slowdown_penalty_max"] is not None:
        histograms["scenario.slowdown_penalty"] = [row["slowdown_penalty_max"]]
    if row["quarantine_threshold_min"] is not None:
        histograms["scenario.quarantine_threshold"] = [
            row["quarantine_threshold_min"],
            row["quarantine_threshold_mean"],
        ]
    if "policy_transitions" in row:
        counters["scenario.policy_bound_met"] = 1.0 if row["policy_bound_met"] else 0.0
        # Histogram so the matrix can report the *minimum* per-run count:
        # every seeded run must adapt, not just the sum across seeds.
        histograms["scenario.policy_transitions"] = [float(row["policy_transitions"])]
    return {"counters": counters, "histograms": histograms}


def matrix_cell_shard(index: int, cells: Sequence[Sequence[Any]]) -> Dict[str, Any]:
    """Picklable shard running one ``(scenario_name, seed)`` cell of the matrix.

    Indexing into a shared ``cells`` list lets :func:`run_matrix` fan the
    *entire* matrix through one :func:`repro.sim.runpar.run_sharded` call (a
    single worker pool at full parallelism) even though every cell carries a
    different scenario; ``run_sharded``'s per-call kwargs are shard-invariant.
    """
    name, seed = cells[index]
    return scenario_shard(seed, name)


def run_matrix(
    names: Optional[Sequence[str]] = None,
    seeds: Sequence[int] = (7, 11),
    workers: Optional[int] = None,
) -> List[Dict[str, Any]]:
    """Run the scenario matrix (scenarios × seeds) and return robustness rows.

    All cells fan out over one :func:`repro.sim.runpar.run_sharded` pool;
    results come back in input order, so per-scenario merges stay in seed
    order and the rows are deterministic for any worker count.
    """
    scenario_names = list(names or SMALL_MATRIX)
    seeds = list(seeds)
    cells = [(name, seed) for name in scenario_names for seed in seeds]
    shard_results = run_sharded(
        "repro.faults.scenarios:matrix_cell_shard",
        list(range(len(cells))),
        workers=workers,
        kwargs={"cells": cells},
    )
    rows: List[Dict[str, Any]] = []
    for position, name in enumerate(scenario_names):
        scenario = _resolve(name)
        merged = merge_shards(
            shard_results[position * len(seeds) : (position + 1) * len(seeds)]
        )
        counters = merged["counters"]
        runs = counters.get("scenario.runs", 0.0) or 1.0
        fraction_hist = merged["histograms"].get("scenario.delivery_fraction")
        completion_hist = merged["histograms"].get("scenario.completion_ratio")
        rejoin_hist = merged["histograms"].get("scenario.rejoin_max_fraction")
        rejoin_excess_hist = merged["histograms"].get("scenario.rejoin_max_excess")
        catchup_hist = merged["histograms"].get("scenario.catchup_latency")
        slowdown_hist = merged["histograms"].get("scenario.slowdown_penalty")
        quarantine_hist = merged["histograms"].get("scenario.quarantine_threshold")
        theory = scenario_robustness_row(
            system_size=scenario.growth_target
            if scenario.workload == "growth"
            else scenario.nodes,
            # Midpoint of the scenario's group-size bounds — the theory
            # column must describe the regime the row actually ran in.
            average_group_size=(scenario.gmin + scenario.gmax) / 2,
            # Network-only plans leave every node live and correct, so the
            # binomial per-node failure model gets p=0: a side-preserving
            # split degrades links, not nodes (its members stay live and
            # reconcile to full delivery), exactly like loss/delay/
            # duplication/corruption.  Per-node-isolation partitions keep
            # their fraction — isolated nodes are unavailable, like crashes.
            # slow_vgroup and split_brain_directory likewise degrade
            # latency/links only: every node stays live and correct.
            fault_fraction=scenario.fault_fraction
            if scenario.plan
            not in (
                "none",
                "delay_spike",
                "dup_storm",
                "lossy_links",
                "corrupt_links",
                "two_sided_split",
                "split_brain_directory",
                "slow_vgroup",
                # Side-preserving cuts plus voluntary leaves: every node
                # stays live and correct throughout.
                "epoch_crossing",
                "overlapping_splits",
            )
            else 0.0,
            synchronous=scenario.smr != "async",
        )
        rows.append(
            {
                "scenario": scenario.name,
                "workload": scenario.workload,
                "plan": scenario.plan,
                "smr": scenario.smr,
                "antientropy": scenario.antientropy,
                "checkpoint_interval": scenario.checkpoint_interval,
                "attack_threshold": scenario.attack_threshold,
                "rejoin_max_group_fraction": rejoin_hist.maximum if rejoin_hist else None,
                "rejoin_max_threshold_excess": (
                    rejoin_excess_hist.maximum if rejoin_excess_hist else None
                ),
                "catchup_bound": scenario.catchup_bound,
                "max_catchup_latency": catchup_hist.maximum if catchup_hist else None,
                "mean_catchup_latency": catchup_hist.mean if catchup_hist else None,
                "catchup_theory": _catchup_theory_for(scenario),
                "max_slowdown_penalty": (
                    slowdown_hist.maximum if slowdown_hist else None
                ),
                "adaptive_quarantine": scenario.adaptive_quarantine,
                "min_quarantine_threshold": (
                    quarantine_hist.minimum if quarantine_hist else None
                ),
                "mean_quarantine_threshold": (
                    quarantine_hist.mean if quarantine_hist else None
                ),
                "seeds": list(seeds),
                "violations": counters.get("scenario.violations", 0.0),
                "checks_run": counters.get("scenario.checks_run", 0.0),
                "evictions_observed": counters.get("scenario.evictions_observed", 0.0),
                "delivery_bound": scenario.delivery_bound,
                "delivery_bound_met_runs": counters.get("scenario.delivery_bound_met", 0.0),
                "runs": runs,
                "mean_delivery_fraction": fraction_hist.mean if fraction_hist else None,
                "mean_completion_ratio": completion_hist.mean if completion_hist else None,
                "faults.messages_dropped": counters.get("faults.messages_dropped", 0.0),
                "faults.messages_duplicated": counters.get("faults.messages_duplicated", 0.0),
                "theory": theory,
            }
        )
        if scenario.policies:
            transitions_hist = merged["histograms"].get("scenario.policy_transitions")
            rows[-1].update(
                {
                    "policies": list(scenario.policies),
                    "min_policy_transitions": scenario.min_policy_transitions,
                    "policy_transitions": counters.get("policy.transitions", 0.0),
                    "policy_transitions_min_run": (
                        transitions_hist.minimum if transitions_hist else None
                    ),
                    "policy_proposals": counters.get("policy.proposals", 0.0),
                }
            )
    return rows


def write_matrix_report(
    path: str = "FAULT_MATRIX.json",
    names: Optional[Sequence[str]] = None,
    seeds: Sequence[int] = (7, 11),
    workers: Optional[int] = None,
) -> Dict[str, Any]:
    """Run the matrix and persist the robustness table to ``path``."""
    import json

    rows = run_matrix(names=names, seeds=seeds, workers=workers)
    report = {
        "matrix": rows,
        "scenarios": len(rows),
        "total_violations": sum(row["violations"] for row in rows),
        "all_bounds_met": all(
            row["delivery_bound_met_runs"] == row["runs"] for row in rows
        ),
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return report


def main(argv: Optional[Sequence[str]] = None) -> int:  # pragma: no cover - CLI
    import argparse
    import json

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--matrix",
        default="small",
        choices=("small", "nightly"),
        help=(
            "which scenario set to run (small = every default scenario; "
            "nightly = the 400*ATUM_BENCH_SCALE-node deployment-scale slice)"
        ),
    )
    parser.add_argument(
        "--scenario",
        action="append",
        default=None,
        help="run only the named scenario(s) instead of the matrix",
    )
    parser.add_argument("--seeds", type=int, default=2, help="seeds per scenario")
    parser.add_argument("--base-seed", type=int, default=7, help="first seed")
    parser.add_argument("--workers", type=int, default=None, help="worker processes")
    parser.add_argument("--output", default="FAULT_MATRIX.json", help="report path")
    args = parser.parse_args(argv)
    names = args.scenario or (
        NIGHTLY_MATRIX if args.matrix == "nightly" else SMALL_MATRIX
    )
    seeds = [args.base_seed + 4 * index for index in range(args.seeds)]
    report = write_matrix_report(
        args.output, names=names, seeds=seeds, workers=args.workers
    )
    print(json.dumps(report, indent=2, sort_keys=True))
    failed = False
    if report["total_violations"]:
        print(f"FAILED: {report['total_violations']} invariant violation(s)")
        failed = True
    if not report["all_bounds_met"]:
        missed = [
            row["scenario"]
            for row in report["matrix"]
            if row["delivery_bound_met_runs"] != row["runs"]
        ]
        print(f"FAILED: delivery/catch-up/attack bound missed by {missed}")
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())


__all__ = [
    "Scenario",
    "SCENARIOS",
    "SMALL_MATRIX",
    "NIGHTLY_MATRIX",
    "PLAN_BUILDERS",
    "run_scenario",
    "scenario_shard",
    "matrix_cell_shard",
    "run_matrix",
    "write_matrix_report",
]
