"""Atum system parameters (paper Table 1) and derived configurations."""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.group.cost import GroupCostModel
from repro.group.heartbeat import HeartbeatConfig
from repro.overlay.guideline import recommended_config
from repro.overlay.membership import MembershipConfig
from repro.overlay.random_walk import WalkMode
from repro.smr.base import SmrConfig, async_fault_threshold, sync_fault_threshold


class SmrKind(enum.Enum):
    """Which SMR engine runs inside every vgroup."""

    SYNC = "sync"      # Dolev-Strong, tolerates f = (g-1)/2, round-based
    ASYNC = "async"    # PBFT-style, tolerates f = (g-1)/3, eventually synchronous


@dataclass
class AtumParameters:
    """The system parameters of Table 1 plus implementation choices.

    Attributes:
        hc: Number of H-graph cycles (typical values 2..12).
        rwl: Length of random walks (typical values 4..15).
        gmax: Maximum vgroup size before a split (8, 14, 20, ...).
        gmin: Minimum vgroup size before a merge (paper default 0.5 * gmax).
        k: Robustness parameter; vgroup size targets ``k * log2(N)``.  Only
            used for analysis -- the protocols themselves use gmin/gmax.
        smr_kind: Synchronous (Dolev-Strong) or asynchronous (PBFT) engine.
        round_duration: Round length of the synchronous engine in seconds.
        request_timeout: View-change timeout of the asynchronous engine.
        heartbeat_period: Heartbeat interval (coarse, one minute by default).
        expected_system_size: The administrator's estimate of N (need not be
            exact; a conservative value trades efficiency for robustness).
        checkpoint_interval: Decided operations between PBFT checkpoints
            (:mod:`repro.smr.checkpoint`); ``0`` (the default) disables
            checkpointing and state transfer, keeping legacy deployments
            byte-identical.  Only meaningful with the Async engine.
        adaptive_quarantine: When True, the state-transfer request layer's
            responder-quarantine threshold adapts to the observed fault
            rate (:class:`repro.net.requests.RequestPolicy`); off by
            default so legacy deployments stay byte-identical.
        gossip_fanout: Optional cap on how many H-graph cycles each member
            forwards a broadcast on under the flood policy.  ``None`` (the
            default) floods all ``hc`` cycles and keeps legacy runs
            byte-identical; the :class:`repro.core.policies.AdaptiveGossip`
            policy lowers it through the ParameterBus under load.

    Runtime adaptation: one ``AtumParameters`` instance is shared by
    reference between a cluster and all of its nodes, so fields mutated
    through :class:`repro.core.policies.ParameterBus` (``gmin``, ``gmax``,
    ``heartbeat_period``, ``gossip_fanout``) are seen cluster-wide and by
    every future joiner.  Fields that layers snapshot at construction time
    (``round_duration``/``request_timeout``/``checkpoint_interval`` via
    :meth:`smr_config`, ``hc``, ``rwl``, ``k``) are adaptation-immutable:
    the bus rejects them, and mutating them directly mid-run silently
    desynchronises the snapshots.
    """

    hc: int = 5
    rwl: int = 10
    gmax: int = 14
    gmin: int = 7
    k: int = 4
    smr_kind: SmrKind = SmrKind.SYNC
    round_duration: float = 1.0
    request_timeout: float = 2.0
    heartbeat_period: float = 60.0
    expected_system_size: int = 800
    checkpoint_interval: int = 0
    adaptive_quarantine: bool = False
    gossip_fanout: Optional[int] = None

    def __post_init__(self) -> None:
        if self.gmin > self.gmax:
            raise ValueError(f"gmin ({self.gmin}) cannot exceed gmax ({self.gmax})")
        if self.hc < 1:
            raise ValueError("hc must be at least 1")
        if self.rwl < 1:
            raise ValueError("rwl must be at least 1")
        if self.gossip_fanout is not None and self.gossip_fanout < 1:
            raise ValueError("gossip_fanout must be at least 1 when set")

    # --------------------------------------------------------------- factories

    @classmethod
    def for_system_size(
        cls,
        expected_size: int,
        smr_kind: SmrKind = SmrKind.SYNC,
        k: Optional[int] = None,
        round_duration: float = 1.0,
    ) -> "AtumParameters":
        """Derive a configuration for an expected system size.

        Vgroup sizes follow the paper's deployed configurations rather than
        the analytical ``k * log2(N)`` bound: Table 1 lists typical ``gmax``
        values of 8, 14, 20, and the evaluation runs 800 nodes in roughly 120
        vgroups (average size ~7).  ``gmax`` therefore grows logarithmically
        with the expected size but stays within Table 1's typical range; the
        asynchronous engine uses larger vgroups (the paper raises ``k`` from 4
        to 7) to compensate for PBFT's lower fault threshold.  ``hc`` and
        ``rwl`` follow the Figure 4 guideline for the expected number of
        vgroups.  ``k`` itself is kept for robustness analysis only, exactly
        as in the paper (footnote 4).
        """
        if expected_size < 1:
            raise ValueError("expected_size must be positive")
        chosen_k = k if k is not None else (4 if smr_kind is SmrKind.SYNC else 7)
        log_term = max(1.0, math.log2(max(2, expected_size)))
        gmax = int(round(log_term / 2)) * 2
        gmax = max(8, min(20, gmax))
        if smr_kind is SmrKind.ASYNC:
            # Larger vgroups compensate for the (g-1)/3 fault threshold.
            gmax = min(26, int(round(gmax * 1.5 / 2)) * 2)
        gmin = max(2, gmax // 2)
        expected_groups = max(1, expected_size // max(gmin, (gmin + gmax) // 2))
        recommendation = recommended_config(expected_groups)
        return cls(
            hc=recommendation.hc,
            rwl=recommendation.rwl,
            gmax=gmax,
            gmin=gmin,
            k=chosen_k,
            smr_kind=smr_kind,
            round_duration=round_duration,
            expected_system_size=expected_size,
        )

    def with_overrides(self, **changes) -> "AtumParameters":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    # ------------------------------------------------------------ derived views

    @property
    def walk_mode(self) -> WalkMode:
        """Sync uses the backward phase, Async uses certificate chains (§5.1)."""
        if self.smr_kind is SmrKind.SYNC:
            return WalkMode.BACKWARD_PHASE
        return WalkMode.CERTIFICATES

    def target_group_size(self, system_size: Optional[int] = None) -> int:
        """The logarithmic-grouping target ``k * log2(N)`` clamped to [gmin, gmax]."""
        size = system_size or self.expected_system_size
        target = int(round(self.k * math.log2(max(2, size))))
        return max(self.gmin, min(self.gmax, target))

    def fault_threshold(self, group_size: int) -> int:
        """Faults tolerated in a vgroup of the given size under this engine."""
        if self.smr_kind is SmrKind.SYNC:
            return sync_fault_threshold(group_size)
        return async_fault_threshold(group_size)

    def membership_config(self, shuffle_enabled: bool = True) -> MembershipConfig:
        """The membership-engine configuration derived from these parameters."""
        return MembershipConfig(
            hc=self.hc,
            rwl=self.rwl,
            gmax=self.gmax,
            gmin=self.gmin,
            walk_mode=self.walk_mode,
            shuffle_enabled=shuffle_enabled,
        )

    def heartbeat_config(self) -> HeartbeatConfig:
        """The heartbeat/eviction timing every node's monitor runs with.

        Single source of truth: the cluster's suspicion-report aging window
        must match the monitors' suspicion deadline (``period * misses``),
        so both sides derive it from this config.  Each call returns a fresh
        snapshot; runtime period changes therefore flow through the
        ParameterBus, which updates ``heartbeat_period`` here (for future
        joiners), every running monitor (via ``set_period``) and the
        cluster's aging window together.
        """
        return HeartbeatConfig(period=self.heartbeat_period)

    def smr_config(self) -> SmrConfig:
        """Per-replica SMR snapshot, taken once when a replica is built.

        Adaptation-immutable: replicas of one vgroup must agree on round
        and timeout durations for the round/view arithmetic to line up, and
        there is no reconfiguration protocol for changing them on a live
        group — the ParameterBus rejects all four fields.
        """
        return SmrConfig(
            round_duration=self.round_duration,
            request_timeout=self.request_timeout,
            checkpoint_interval=self.checkpoint_interval,
            adaptive_quarantine=self.adaptive_quarantine,
        )

    def cost_model(self, network_latency: float = 0.001) -> GroupCostModel:
        """The group-level cost model for the vgroup-granularity engine."""
        return GroupCostModel(
            synchronous=self.smr_kind is SmrKind.SYNC,
            round_duration=self.round_duration,
            network_latency=network_latency,
        )


def parameter_table() -> List[Dict[str, str]]:
    """The contents of the paper's Table 1 (parameter, description, typical values)."""
    return [
        {
            "parameter": "hc",
            "description": "Number of H-graph cycles.",
            "typical_values": "2, ..., 12",
        },
        {
            "parameter": "rwl",
            "description": "Length of random walks.",
            "typical_values": "4, ..., 15",
        },
        {
            "parameter": "gmax",
            "description": "Maximum vgroup size.",
            "typical_values": "8, 14, 20, ...",
        },
        {
            "parameter": "gmin",
            "description": "Minimum vgroup size.",
            "typical_values": "0.5 * gmax",
        },
        {
            "parameter": "k",
            "description": "Robustness parameter.",
            "typical_values": "3, ..., 7",
        },
    ]


__all__ = ["SmrKind", "AtumParameters", "parameter_table"]
