"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import Simulator, SimulationError
from repro.sim.events import EventQueue


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        fired = []
        queue.push(2.0, lambda: fired.append("b"))
        queue.push(1.0, lambda: fired.append("a"))
        queue.push(3.0, lambda: fired.append("c"))
        while True:
            event = queue.pop()
            if event is None:
                break
            event.callback()
        assert fired == ["a", "b", "c"]

    def test_ties_broken_by_insertion_order(self):
        queue = EventQueue()
        fired = []
        for name in ["first", "second", "third"]:
            queue.push(1.0, lambda n=name: fired.append(n))
        while (event := queue.pop()) is not None:
            event.callback()
        assert fired == ["first", "second", "third"]

    def test_priority_beats_insertion_order(self):
        queue = EventQueue()
        fired = []
        queue.push(1.0, lambda: fired.append("low"), priority=5)
        queue.push(1.0, lambda: fired.append("high"), priority=0)
        while (event := queue.pop()) is not None:
            event.callback()
        assert fired == ["high", "low"]

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        fired = []
        event = queue.push(1.0, lambda: fired.append("x"))
        queue.push(2.0, lambda: fired.append("y"))
        event.cancel()
        queue.notify_cancelled()
        while (popped := queue.pop()) is not None:
            popped.callback()
        assert fired == ["y"]

    def test_len_tracks_live_events(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert len(queue) == 2
        queue.pop()
        assert len(queue) == 1


class TestSimulator:
    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [1.5]
        assert sim.now == 1.5

    def test_schedule_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(2.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_run_until_horizon(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(5.0, lambda: fired.append(5))
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.now == 2.0
        sim.run()
        assert fired == [1, 5]

    def test_nested_scheduling_from_callbacks(self):
        sim = Simulator()
        fired = []

        def outer():
            fired.append(("outer", sim.now))
            sim.schedule(0.5, lambda: fired.append(("inner", sim.now)))

        sim.schedule(1.0, outer)
        sim.run()
        assert fired == [("outer", 1.0), ("inner", 1.5)]

    def test_cancel_scheduled_event(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda: fired.append("x"))
        sim.cancel(event)
        sim.run()
        assert fired == []

    def test_max_events_limit(self):
        sim = Simulator()

        def reschedule():
            sim.schedule(1.0, reschedule)

        sim.schedule(1.0, reschedule)
        sim.run(max_events=10)
        assert sim.processed_events == 10

    def test_stop_from_callback(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
        sim.schedule(2.0, lambda: fired.append(2))
        sim.run()
        assert fired == [1]

    def test_deterministic_rng_streams(self):
        sim_a = Simulator(seed=42)
        sim_b = Simulator(seed=42)
        values_a = [sim_a.rng.stream("x").random() for _ in range(5)]
        values_b = [sim_b.rng.stream("x").random() for _ in range(5)]
        assert values_a == values_b

    def test_distinct_streams_are_independent(self):
        sim = Simulator(seed=42)
        a = [sim.rng.stream("a").random() for _ in range(3)]
        b = [sim.rng.stream("b").random() for _ in range(3)]
        assert a != b


class TestActorTimers:
    def test_timer_fires_and_clears(self):
        from repro.sim.actor import Actor

        sim = Simulator()
        actor = Actor(sim, "a")
        fired = []
        actor.set_timer("t", 1.0, lambda: fired.append(sim.now))
        assert actor.has_timer("t")
        sim.run()
        assert fired == [1.0]
        assert not actor.has_timer("t")

    def test_rearming_replaces_previous_timer(self):
        from repro.sim.actor import Actor

        sim = Simulator()
        actor = Actor(sim, "a")
        fired = []
        actor.set_timer("t", 1.0, lambda: fired.append("first"))
        actor.set_timer("t", 2.0, lambda: fired.append("second"))
        sim.run()
        assert fired == ["second"]

    def test_shutdown_cancels_timers(self):
        from repro.sim.actor import Actor

        sim = Simulator()
        actor = Actor(sim, "a")
        fired = []
        actor.set_timer("t", 1.0, lambda: fired.append("x"))
        actor.shutdown()
        sim.run()
        assert fired == []
