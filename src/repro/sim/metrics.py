"""Lightweight metrics collection for simulations.

The benchmark harness and the integration tests inspect protocol behaviour
through these metrics rather than by poking protocol internals.

:class:`Histogram` is on the per-message hot path (every delivery records a
latency sample), so it keeps running accumulators for ``mean``/``minimum``/
``maximum`` and a lazily-maintained sorted view for ``percentile``/``cdf``:
recording invalidates the view, queries re-sort at most once per batch of
records instead of once per query.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple


class Histogram:
    """A sample-accumulating histogram with cached percentile queries.

    ``samples`` stays a public list (in insertion order).  Appending to it
    directly remains fully supported: the running accumulators and the cached
    sorted view reconcile lazily on the next query, exactly as if the values
    had gone through :meth:`record`.  Destructive mutations (``clear``,
    ``pop``, slice assignment) are detected on a best-effort basis — a shrink
    or a changed last-accumulated element triggers a full recompute, but a
    same-length interior rewrite (or a regrow that coincidentally reproduces
    the last accumulated value at its old index) is not observable in O(1);
    call :meth:`invalidate` after such mutations.
    """

    __slots__ = ("samples", "_sorted", "_sum", "_min", "_max", "_acc_count", "_last_acc")

    def __init__(self, samples: Optional[Iterable[float]] = None) -> None:
        self.samples: List[float] = []
        self._sorted: Optional[List[float]] = None
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._acc_count = 0
        self._last_acc: Optional[float] = None
        if samples:
            self.record_many(samples)

    def record(self, value: float) -> None:
        # Recording IS appending: all accumulator bookkeeping happens lazily
        # in _reconcile() on the next query, which folds the appended tail in
        # insertion order — so the statistics are bit-identical to eager
        # accumulation, while the per-record hot path is a single append.
        self.samples.append(value)

    def record_many(self, values: Iterable[float]) -> None:
        self.samples.extend(values)

    def invalidate(self) -> None:
        """Force a full recompute after arbitrary mutation of ``samples``."""
        samples = self.samples
        self._sum = sum(samples)
        self._min = min(samples) if samples else math.inf
        self._max = max(samples) if samples else -math.inf
        self._sorted = None
        self._acc_count = len(samples)
        self._last_acc = samples[-1] if samples else None

    def _reconcile(self) -> None:
        """Fold direct mutations of ``samples`` into the accumulators.

        A grown list with an untouched last accumulated element folds in the
        new tail; a shrink, or a changed element at the last accumulated
        index (e.g. ``clear()`` followed by new appends), triggers a full
        recompute and drops the cached sorted view.
        """
        count = self._acc_count
        samples = self.samples
        grown_cleanly = count < len(samples) and (
            count == 0 or samples[count - 1] == self._last_acc
        )
        if count == len(samples) and (count == 0 or samples[-1] == self._last_acc):
            return
        if grown_cleanly:
            tail = samples[count:]
            self._sum += sum(tail)
            tail_min = min(tail)
            tail_max = max(tail)
            if tail_min < self._min:
                self._min = tail_min
            if tail_max > self._max:
                self._max = tail_max
        else:
            self._sum = sum(samples)
            self._min = min(samples) if samples else math.inf
            self._max = max(samples) if samples else -math.inf
            self._sorted = None
        self._acc_count = len(samples)
        self._last_acc = samples[-1] if samples else None

    def __len__(self) -> int:
        return len(self.samples)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Histogram):
            return self.samples == other.samples
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram(count={len(self.samples)})"

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        if not self.samples:
            return math.nan
        self._reconcile()
        return self._sum / len(self.samples)

    @property
    def minimum(self) -> float:
        if not self.samples:
            return math.nan
        self._reconcile()
        return self._min

    @property
    def maximum(self) -> float:
        if not self.samples:
            return math.nan
        self._reconcile()
        return self._max

    def _sorted_view(self) -> List[float]:
        # Reconcile first: destructive external mutations drop the cached
        # view, so what remains below is first-query or clean growth.
        self._reconcile()
        ordered = self._sorted
        samples = self.samples
        if ordered is None or len(ordered) > len(samples):
            ordered = self._sorted = sorted(samples)
        elif len(ordered) < len(samples):
            # Merge the (already sorted) view with the newly recorded tail:
            # concatenating two ascending runs lets timsort merge them in
            # O(n) with C-level comparisons, instead of a full re-sort.
            tail = samples[len(ordered):]
            tail.sort()
            ordered = ordered + tail
            ordered.sort()
            self._sorted = ordered
        return ordered

    def percentile(self, p: float) -> float:
        """Return the ``p``-th percentile (0..100) using nearest-rank."""
        if not self.samples:
            return math.nan
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        ordered = self._sorted_view()
        rank = max(0, min(len(ordered) - 1, math.ceil(p / 100.0 * len(ordered)) - 1))
        return ordered[rank]

    def cdf(self) -> List[Tuple[float, float]]:
        """Return the empirical CDF as ``(value, fraction <= value)`` pairs."""
        ordered = self._sorted_view()
        n = len(ordered)
        return [(value, (index + 1) / n) for index, value in enumerate(ordered)]


@dataclass
class TimeSeries:
    """A time-stamped series of values (e.g. system size over time)."""

    points: List[Tuple[float, float]] = field(default_factory=list)

    def record(self, time: float, value: float) -> None:
        self.points.append((time, value))

    def __len__(self) -> int:
        return len(self.points)

    def values(self) -> List[float]:
        return [value for _, value in self.points]

    def times(self) -> List[float]:
        return [time for time, _ in self.points]

    def last(self) -> Tuple[float, float]:
        if not self.points:
            raise ValueError("time series is empty")
        return self.points[-1]

    def value_at(self, time: float) -> float:
        """Return the last recorded value at or before ``time`` (step function)."""
        best = None
        for point_time, value in self.points:
            if point_time <= time:
                best = value
            else:
                break
        if best is None:
            raise ValueError(f"no sample at or before t={time}")
        return best


class MetricsRegistry:
    """Counters, histograms and time series addressed by name."""

    def __init__(self) -> None:
        self.counters: Dict[str, float] = defaultdict(float)
        self.histograms: Dict[str, Histogram] = defaultdict(Histogram)
        self.series: Dict[str, TimeSeries] = defaultdict(TimeSeries)

    def increment(self, name: str, amount: float = 1.0) -> None:
        self.counters[name] += amount

    def counter(self, name: str) -> float:
        return self.counters.get(name, 0.0)

    def observe(self, name: str, value: float) -> None:
        self.histograms[name].record(value)

    def histogram(self, name: str) -> Histogram:
        return self.histograms[name]

    def record_point(self, name: str, time: float, value: float) -> None:
        self.series[name].record(time, value)

    def timeseries(self, name: str) -> TimeSeries:
        return self.series[name]

    def snapshot(self) -> Dict[str, float]:
        """Return a flat view of counters plus histogram means (for reports)."""
        flat: Dict[str, float] = dict(self.counters)
        for name, histogram in self.histograms.items():
            if histogram.count:
                flat[f"{name}.mean"] = histogram.mean
                flat[f"{name}.count"] = float(histogram.count)
        return flat

    @staticmethod
    def merge_histograms(histograms: Iterable[Histogram]) -> Histogram:
        merged = Histogram()
        for histogram in histograms:
            # C-speed bulk append; the lazy reconcile folds the tail into the
            # accumulators on first query.
            merged.samples.extend(histogram.samples)
        return merged


__all__ = ["Histogram", "TimeSeries", "MetricsRegistry"]
