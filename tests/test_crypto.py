"""Unit tests for the crypto substrate."""

import pytest

from repro.crypto import (
    CertificateChain,
    CryptoCostModel,
    KeyRegistry,
    SignatureError,
    digest_bytes,
    digest_object,
)
from repro.crypto.certificates import make_certificate


class TestDigests:
    def test_digest_bytes_deterministic(self):
        assert digest_bytes(b"abc") == digest_bytes(b"abc")
        assert digest_bytes(b"abc") != digest_bytes(b"abd")

    def test_digest_object_is_order_insensitive_for_dicts(self):
        assert digest_object({"a": 1, "b": 2}) == digest_object({"b": 2, "a": 1})

    def test_digest_object_differs_for_different_content(self):
        assert digest_object({"a": 1}) != digest_object({"a": 2})

    def test_digest_handles_nested_structures(self):
        obj = {"list": [1, 2, {"x": (3, 4)}], "set": {"b", "a"}, "bytes": b"\x00\x01"}
        assert isinstance(digest_object(obj), str)
        assert digest_object(obj) == digest_object(obj)

    def test_digest_dataclass(self):
        from dataclasses import dataclass

        @dataclass
        class Point:
            x: int
            y: int

        assert digest_object(Point(1, 2)) == digest_object(Point(1, 2))
        assert digest_object(Point(1, 2)) != digest_object(Point(2, 1))


class TestSignatures:
    def test_sign_and_verify(self):
        registry = KeyRegistry()
        signature = registry.sign("alice", {"msg": "hello"})
        assert registry.verify(signature, {"msg": "hello"})

    def test_verify_fails_on_tampered_content(self):
        registry = KeyRegistry()
        signature = registry.sign("alice", {"msg": "hello"})
        assert not registry.verify(signature, {"msg": "bye"})

    def test_verify_fails_for_unknown_signer(self):
        registry_a = KeyRegistry("domain-a")
        registry_b = KeyRegistry("domain-b")
        signature = registry_a.sign("alice", "payload")
        assert not registry_b.verify(signature, "payload")

    def test_forged_signer_name_rejected(self):
        registry = KeyRegistry()
        registry.generate("alice")
        registry.generate("mallory")
        # Mallory signs but claims to be alice by swapping the signer field.
        mallory_signature = registry.sign("mallory", "payload")
        forged = type(mallory_signature)(
            signer="alice", digest=mallory_signature.digest, mac=mallory_signature.mac
        )
        assert not registry.verify(forged, "payload")

    def test_verify_or_raise(self):
        registry = KeyRegistry()
        signature = registry.sign("alice", "x")
        registry.verify_or_raise(signature, "x")
        with pytest.raises(SignatureError):
            registry.verify_or_raise(signature, "y")

    def test_pairwise_mac_differs_by_peer(self):
        registry = KeyRegistry()
        assert registry.mac("alice", "bob", "m") != registry.mac("alice", "carol", "m")


class TestCertificateChains:
    def _chain(self, registry, hops, quorum_per_hop=3, walk_id="walk-1"):
        chain = CertificateChain(walk_id=walk_id)
        previous = "G0"
        for hop in range(hops):
            issuer = previous
            next_hop = f"G{hop + 1}"
            members = [f"{issuer}-member-{i}" for i in range(quorum_per_hop + 1)]
            for member in members:
                registry.generate(member)
            chain.append(
                make_certificate(
                    registry,
                    walk_id=walk_id,
                    hop=hop,
                    issuer=issuer,
                    issuer_members=members,
                    next_hop=next_hop,
                    signers=members[:quorum_per_hop],
                )
            )
            previous = next_hop
        return chain

    def test_valid_chain_verifies(self):
        registry = KeyRegistry()
        chain = self._chain(registry, hops=5)
        assert chain.verify(registry, origin_group="G0")
        assert chain.selected_group == "G5"

    def test_chain_with_broken_linkage_fails(self):
        registry = KeyRegistry()
        chain = self._chain(registry, hops=3)
        # Remove the middle certificate: linkage broken.
        del chain.certificates[1]
        assert not chain.verify(registry, origin_group="G0")

    def test_chain_without_majority_fails(self):
        registry = KeyRegistry()
        chain = CertificateChain(walk_id="w")
        members = ["m0", "m1", "m2", "m3"]
        for member in members:
            registry.generate(member)
        chain.append(
            make_certificate(
                registry,
                walk_id="w",
                hop=0,
                issuer="G0",
                issuer_members=members,
                next_hop="G1",
                signers=members[:2],  # only 2 of 4: not a majority
            )
        )
        assert not chain.verify(registry, origin_group="G0")

    def test_chain_size_grows_linearly(self):
        registry = KeyRegistry()
        short = self._chain(registry, hops=2, walk_id="short")
        long = self._chain(registry, hops=10, walk_id="long")
        assert long.size_bytes() == 5 * short.size_bytes()

    def test_empty_chain_selected_group_raises(self):
        with pytest.raises(ValueError):
            CertificateChain(walk_id="w").selected_group


class TestCostModel:
    def test_hash_cost_scales_with_size(self):
        model = CryptoCostModel()
        assert model.hash_cost(2048) == pytest.approx(2 * model.hash_cost(1024))

    def test_hash_cost_parallelism(self):
        model = CryptoCostModel()
        assert model.hash_cost(1 << 20, threads=4) == pytest.approx(
            model.hash_cost(1 << 20) / 4
        )

    def test_certificate_chain_cost(self):
        model = CryptoCostModel()
        assert model.certificate_chain_verify_cost(10, 3) == pytest.approx(
            model.verify_cost(30)
        )
