"""Tests for the workload drivers (growth, churn, broadcasts, Byzantine selection)."""

import random

import pytest

from repro.core.cluster import AtumCluster
from repro.core.config import AtumParameters
from repro.group.cost import GroupCostModel
from repro.overlay.membership import MembershipConfig, MembershipEngine
from repro.sim import Simulator
from repro.workloads import (
    BroadcastWorkload,
    BroadcastWorkloadConfig,
    ChurnConfig,
    ChurnWorkload,
    GrowthConfig,
    GrowthWorkload,
    max_sustainable_churn,
    select_byzantine,
)


def make_engine(seed=0, synchronous=True, size=0):
    sim = Simulator(seed=seed)
    config = MembershipConfig(hc=3, rwl=6, gmax=8, gmin=4)
    engine = MembershipEngine(sim, config, GroupCostModel(synchronous=synchronous, round_duration=1.0))
    if size:
        engine.build_static([f"n{i}" for i in range(size)])
    return engine


class TestGrowthWorkload:
    def test_reaches_target_size(self):
        engine = make_engine()
        workload = GrowthWorkload(engine, GrowthConfig(target_size=60, join_fraction_per_minute=0.2,
                                                       provisioning_delay=5.0, max_duration=20_000))
        series = workload.run()
        assert engine.system_size == 60
        assert series.values()[-1] == 60
        engine.validate()

    def test_growth_is_superlinear(self):
        # Because the join rate is proportional to the current size, the second
        # half of the growth takes less time than the first half.
        engine = make_engine(seed=1)
        workload = GrowthWorkload(engine, GrowthConfig(target_size=120, join_fraction_per_minute=0.2,
                                                       provisioning_delay=5.0, max_duration=40_000))
        workload.run()
        quarter = workload.time_to_reach(30)
        half = workload.time_to_reach(60)
        full = workload.time_to_reach(120)
        assert quarter is not None and half is not None and full is not None
        assert (full - half) < (half - quarter) * 1.5

    def test_higher_join_rate_lowers_exchange_completion(self):
        def completion(rate):
            engine = make_engine(seed=2)
            workload = GrowthWorkload(
                engine,
                GrowthConfig(target_size=100, join_fraction_per_minute=rate,
                             provisioning_delay=2.0, max_duration=60_000),
            )
            workload.run()
            return workload.exchange_completion_rate()

        slow = completion(0.08)
        fast = completion(0.40)
        # Figure 13: faster growth suppresses more exchanges.
        assert fast <= slow

    def test_time_to_reach_unreached_size_is_none(self):
        engine = make_engine()
        workload = GrowthWorkload(engine, GrowthConfig(target_size=20, join_fraction_per_minute=0.2,
                                                       provisioning_delay=1.0))
        workload.run()
        assert workload.time_to_reach(500) is None


class TestChurnWorkload:
    def test_low_churn_is_sustained(self):
        engine = make_engine(seed=3, size=60)
        workload = ChurnWorkload(engine, ChurnConfig(rate_per_minute=5, duration=180.0))
        result = workload.run()
        assert result.sustained
        assert result.completed_joins > 0
        engine.validate()

    def test_extreme_churn_is_not_sustained(self):
        engine = make_engine(seed=4, size=60)
        workload = ChurnWorkload(engine, ChurnConfig(rate_per_minute=2000, duration=120.0))
        result = workload.run()
        assert not result.sustained

    def test_system_size_roughly_preserved(self):
        engine = make_engine(seed=5, size=50)
        workload = ChurnWorkload(engine, ChurnConfig(rate_per_minute=10, duration=120.0))
        workload.run()
        assert 40 <= engine.system_size <= 60

    def test_max_sustainable_churn_returns_highest_sustained_rate(self):
        def factory():
            return make_engine(seed=6, size=50)

        best = max_sustainable_churn(factory, rates_per_minute=[2, 8, 4000], duration=120.0)
        assert best in (2, 8)

    def test_async_sustains_more_churn_than_sync(self):
        def best_for(synchronous):
            def factory():
                return make_engine(seed=7, synchronous=synchronous, size=50)

            return max_sustainable_churn(factory, rates_per_minute=[5, 20, 60, 120], duration=120.0)

        assert best_for(False) >= best_for(True)


class TestBroadcastWorkload:
    def _cluster(self):
        params = AtumParameters(hc=3, rwl=5, gmax=6, gmin=3, round_duration=0.5)
        cluster = AtumCluster(params, seed=8)
        cluster.build_static([f"n{i}" for i in range(24)])
        return cluster

    def test_all_broadcasts_fully_delivered(self):
        cluster = self._cluster()
        workload = BroadcastWorkload(cluster, BroadcastWorkloadConfig(count=5, interval=0.2, settle_time=30.0))
        latencies = workload.run()
        assert len(latencies) == 5 * 24
        assert all(fraction == 1.0 for fraction in workload.delivery_fractions().values())

    def test_latencies_positive_and_bounded(self):
        cluster = self._cluster()
        workload = BroadcastWorkload(cluster, BroadcastWorkloadConfig(count=3, interval=0.2, settle_time=30.0))
        latencies = workload.run()
        assert all(0.0 <= latency <= 10.0 for latency in latencies)

    def test_empty_cluster_raises(self):
        params = AtumParameters(hc=3, rwl=5, gmax=6, gmin=3)
        cluster = AtumCluster(params)
        workload = BroadcastWorkload(cluster)
        with pytest.raises(RuntimeError):
            workload.run()


class TestByzantineSelection:
    def test_select_by_count(self):
        addresses = [f"n{i}" for i in range(100)]
        chosen = select_byzantine(addresses, count=7)
        assert len(chosen) == 7
        assert set(chosen) <= set(addresses)

    def test_select_by_fraction(self):
        addresses = [f"n{i}" for i in range(850)]
        chosen = select_byzantine(addresses, fraction=0.058)
        assert len(chosen) == round(0.058 * 850)

    def test_both_or_neither_rejected(self):
        with pytest.raises(ValueError):
            select_byzantine(["a"], count=1, fraction=0.5)
        with pytest.raises(ValueError):
            select_byzantine(["a"])

    def test_too_many_rejected(self):
        with pytest.raises(ValueError):
            select_byzantine(["a", "b"], count=3)

    def test_deterministic_with_seeded_rng(self):
        addresses = [f"n{i}" for i in range(50)]
        first = select_byzantine(addresses, count=5, rng=random.Random(1))
        second = select_byzantine(addresses, count=5, rng=random.Random(1))
        assert first == second
