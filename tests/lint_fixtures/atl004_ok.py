"""ATL004 fixture: blanket excepts that count, re-raise, or are waived."""


def counted(action, metrics):
    try:
        action()
    except Exception:
        metrics.increment("invariants.check_errors")


def reraised(action):
    try:
        action()
    except Exception:
        raise


def subscripted(action, counters):
    try:
        action()
    except Exception:
        counters["invariants.check_errors"] += 1


def waived(action):
    try:
        action()
    except Exception:  # atumlint: allow[ATL004] fixture: best-effort cleanup, failure is irrelevant here
        pass
