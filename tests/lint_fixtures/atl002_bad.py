"""ATL002 fixture: wall-clock reads outside benchmarks/ and sim/perf.py."""

import time
from datetime import datetime
from time import perf_counter


def stamp():
    started = time.time()
    tick = perf_counter()
    return started, tick, datetime.now()
