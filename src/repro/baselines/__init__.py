"""Baselines the paper compares Atum against.

* :mod:`repro.baselines.gossip` -- a classic round-based crash-tolerant gossip
  protocol with global membership (the "S.Gossip" line of Figure 8).
* :mod:`repro.baselines.global_smr` -- the synchronous Byzantine agreement
  scaled out to the whole system (the "S.SMR" line of Figure 8).
* :mod:`repro.baselines.nfs` -- an NFS-like single-server file service with
  the same transfer cost model as AShare (the baseline of Figure 9).
"""

from repro.baselines.gossip import ClassicGossipSimulation, GossipConfig
from repro.baselines.global_smr import global_smr_latency, GlobalSmrBaseline
from repro.baselines.nfs import NfsServerModel, NfsConfig

__all__ = [
    "ClassicGossipSimulation",
    "GossipConfig",
    "global_smr_latency",
    "GlobalSmrBaseline",
    "NfsServerModel",
    "NfsConfig",
]
