"""Tests for ASub, the publish/subscribe service."""

import pytest

from repro.apps.asub import ASubService, ASubTopic
from repro.core.config import AtumParameters, SmrKind


def small_params():
    return AtumParameters(hc=3, rwl=5, gmax=6, gmin=3, round_duration=0.5, expected_system_size=30)


class TestTopicLifecycle:
    def test_create_topic_bootstraps_creator(self):
        service = ASubService(small_params())
        topic = service.create_topic("news", creator="alice")
        assert topic.subscriber_count() == 1

    def test_duplicate_topic_rejected(self):
        service = ASubService(small_params())
        service.create_topic("news", creator="alice")
        with pytest.raises(ValueError):
            service.create_topic("news", creator="bob")

    def test_unknown_topic_rejected(self):
        service = ASubService(small_params())
        with pytest.raises(KeyError):
            service.topic("ghost")

    def test_prebuilt_topic_has_all_subscribers(self):
        service = ASubService(small_params())
        subscribers = [f"s{i}" for i in range(20)]
        topic = service.create_topic("sports", creator="creator", prebuilt_subscribers=subscribers)
        assert topic.subscriber_count() == 21


class TestPublish:
    def test_publish_reaches_every_subscriber(self):
        service = ASubService(small_params())
        subscribers = [f"s{i}" for i in range(20)]
        topic = service.create_topic("news", creator="alice", prebuilt_subscribers=subscribers)
        topic.publish("alice", {"headline": "volatile groups!"})
        topic.run(60.0)
        for subscriber in ["alice", *subscribers]:
            events = topic.events_received_by(subscriber)
            assert len(events) == 1
            assert events[0].payload == {"headline": "volatile groups!"}
            assert events[0].publisher == "alice"

    def test_any_subscriber_can_publish(self):
        service = ASubService(small_params())
        subscribers = [f"s{i}" for i in range(15)]
        topic = service.create_topic("chat", creator="root", prebuilt_subscribers=subscribers)
        topic.publish("s3", "hello from s3")
        topic.run(60.0)
        assert all(len(topic.events_received_by(s)) == 1 for s in subscribers)

    def test_multiple_events_are_all_delivered(self):
        service = ASubService(small_params())
        subscribers = [f"s{i}" for i in range(12)]
        topic = service.create_topic("chat", creator="root", prebuilt_subscribers=subscribers)
        for index in range(3):
            topic.publish("root", f"event-{index}")
        topic.run(90.0)
        payloads = [event.payload for event in topic.events_received_by("s5")]
        assert sorted(payloads) == ["event-0", "event-1", "event-2"]

    def test_callback_invoked_on_delivery(self):
        captured = []
        params = small_params()
        topic = ASubTopic("t", creator="alice", params=params)
        topic._subscriber_callbacks["alice"] = captured.append
        topic.publish("alice", "self-delivery")
        topic.run(30.0)
        assert len(captured) == 1
        assert captured[0].payload == "self-delivery"


class TestSubscribeUnsubscribe:
    def test_subscribe_through_join(self):
        topic = ASubTopic("t", creator="alice", params=small_params())
        topic.subscribe("bob", contact="alice")
        topic.cluster.run_until_membership_quiescent(max_time=600.0)
        assert topic.subscriber_count() == 2
        topic.publish("alice", "welcome bob")
        topic.run(60.0)
        assert len(topic.events_received_by("bob")) == 1

    def test_unsubscribe_through_leave(self):
        service = ASubService(small_params())
        subscribers = [f"s{i}" for i in range(12)]
        topic = service.create_topic("t", creator="root", prebuilt_subscribers=subscribers)
        topic.unsubscribe("s0")
        topic.cluster.run_until_membership_quiescent(max_time=600.0)
        assert topic.subscriber_count() == 12  # 13 members minus the one that left
