"""End-to-end tests of the heartbeat/eviction path and cluster fault handling."""

import pytest

from repro.core import AtumCluster, AtumParameters, SmrKind
from repro.overlay.random_walk import WalkMode


def params_with_heartbeats(period=20.0):
    return AtumParameters(
        hc=3,
        rwl=5,
        gmax=6,
        gmin=3,
        smr_kind=SmrKind.SYNC,
        round_duration=0.5,
        heartbeat_period=period,
        expected_system_size=24,
    )


class TestHeartbeatDrivenEviction:
    def test_crashed_node_is_eventually_evicted(self):
        cluster = AtumCluster(params_with_heartbeats(), seed=1, enable_heartbeats=True)
        cluster.build_static([f"n{i}" for i in range(18)])
        assert cluster.system_size == 18
        cluster.crash("n4")
        # After several missed heartbeat periods, n4's vgroup peers suspect it
        # and the eviction (which proceeds like a leave) removes it.
        cluster.run(until=600.0)
        assert cluster.system_size == 17
        assert "n4" not in cluster.engine.node_group
        assert cluster.sim.metrics.counter("membership.evictions_started") >= 1

    def test_responsive_nodes_are_not_evicted(self):
        cluster = AtumCluster(params_with_heartbeats(), seed=2, enable_heartbeats=True)
        cluster.build_static([f"n{i}" for i in range(18)])
        cluster.run(until=400.0)
        assert cluster.system_size == 18
        assert cluster.sim.metrics.counter("membership.evictions_started") == 0

    def test_system_still_broadcasts_after_eviction(self):
        cluster = AtumCluster(params_with_heartbeats(), seed=3, enable_heartbeats=True)
        cluster.build_static([f"n{i}" for i in range(18)])
        cluster.crash("n7")
        cluster.run(until=600.0)
        assert "n7" not in cluster.engine.node_group
        bcast = cluster.broadcast("n0", "post-eviction")
        cluster.run(until=cluster.sim.now + 60.0)
        assert cluster.delivery_fraction(bcast) >= 16 / 17

    def test_eviction_needs_a_majority_of_suspicions(self):
        cluster = AtumCluster(params_with_heartbeats(), seed=4)
        cluster.build_static([f"n{i}" for i in range(12)])
        peers = [m for m in cluster.engine.group_of("n5").members if m != "n5"]
        # A single (possibly Byzantine) suspicion must not evict a correct node.
        cluster.request_eviction("n5", suspected_by=peers[0])
        cluster.run_until_membership_quiescent(max_time=300.0)
        assert cluster.system_size == 12
        # Once a majority of its vgroup peers report it, the eviction proceeds
        # exactly once, even if further (duplicate) reports arrive.
        for suspector in peers:
            cluster.request_eviction("n5", suspected_by=suspector)
            cluster.request_eviction("n5", suspected_by=suspector)
        cluster.run_until_membership_quiescent(max_time=600.0)
        assert cluster.system_size == 11
        assert cluster.sim.metrics.counter("membership.evictions_started") == 1

    def test_eviction_request_for_unknown_node_ignored(self):
        cluster = AtumCluster(params_with_heartbeats(), seed=5)
        cluster.build_static([f"n{i}" for i in range(12)])
        cluster.request_eviction("ghost", suspected_by="n1")
        cluster.run(until=60.0)
        assert cluster.system_size == 12

    def test_byzantine_node_cannot_evict_correct_peers(self):
        # A crashed/Byzantine node that pretends not to receive heartbeats
        # (section 6.1.3) cannot push correct nodes out on its own.
        cluster = AtumCluster(params_with_heartbeats(), seed=7, enable_heartbeats=True)
        cluster.build_static([f"n{i}" for i in range(18)])
        victim_group = cluster.engine.group_of("n2")
        cluster.node("n2").byzantine = "mute"  # pretends not to receive any heartbeat
        cluster.run(until=400.0)
        # n2 suspects (and reports) every peer, but a single accuser is not a
        # majority, so no correct node is evicted.
        correct = [m for m in victim_group.members if m != "n2"]
        assert all(member in cluster.engine.node_group for member in correct)


class TestWalkModeSelection:
    def test_sync_uses_backward_phase(self):
        params = AtumParameters(smr_kind=SmrKind.SYNC)
        assert params.walk_mode is WalkMode.BACKWARD_PHASE
        assert params.membership_config().walk_mode is WalkMode.BACKWARD_PHASE

    def test_async_uses_certificates(self):
        params = AtumParameters(smr_kind=SmrKind.ASYNC)
        assert params.walk_mode is WalkMode.CERTIFICATES
        assert params.membership_config().walk_mode is WalkMode.CERTIFICATES

    def test_cost_model_follows_engine_choice(self):
        sync_cost = AtumParameters(smr_kind=SmrKind.SYNC).cost_model()
        async_cost = AtumParameters(smr_kind=SmrKind.ASYNC).cost_model()
        assert sync_cost.synchronous and not async_cost.synchronous


class TestRejoinAfterEviction:
    def test_evicted_node_can_rejoin(self):
        cluster = AtumCluster(params_with_heartbeats(), seed=6)
        cluster.build_static([f"n{i}" for i in range(12)])
        peers = [m for m in cluster.engine.group_of("n3").members if m != "n3"]
        for suspector in peers:
            cluster.request_eviction("n3", suspected_by=suspector)
        cluster.run_until_membership_quiescent(max_time=600.0)
        assert cluster.system_size == 11
        # The node recovers and rejoins through a contact node (section 5.1).
        cluster.node("n3").byzantine = None
        cluster.join("n3", contact="n0")
        cluster.run_until_membership_quiescent(max_time=600.0)
        assert cluster.system_size == 12
        assert cluster.node("n3").is_member
