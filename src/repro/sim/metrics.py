"""Lightweight metrics collection for simulations.

The benchmark harness and the integration tests inspect protocol behaviour
through these metrics rather than by poking protocol internals.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple


@dataclass
class Histogram:
    """A simple sample-accumulating histogram with percentile queries."""

    samples: List[float] = field(default_factory=list)

    def record(self, value: float) -> None:
        self.samples.append(value)

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        if not self.samples:
            return math.nan
        return sum(self.samples) / len(self.samples)

    @property
    def minimum(self) -> float:
        return min(self.samples) if self.samples else math.nan

    @property
    def maximum(self) -> float:
        return max(self.samples) if self.samples else math.nan

    def percentile(self, p: float) -> float:
        """Return the ``p``-th percentile (0..100) using nearest-rank."""
        if not self.samples:
            return math.nan
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        ordered = sorted(self.samples)
        rank = max(0, min(len(ordered) - 1, math.ceil(p / 100.0 * len(ordered)) - 1))
        return ordered[rank]

    def cdf(self) -> List[Tuple[float, float]]:
        """Return the empirical CDF as ``(value, fraction <= value)`` pairs."""
        ordered = sorted(self.samples)
        n = len(ordered)
        return [(value, (index + 1) / n) for index, value in enumerate(ordered)]


@dataclass
class TimeSeries:
    """A time-stamped series of values (e.g. system size over time)."""

    points: List[Tuple[float, float]] = field(default_factory=list)

    def record(self, time: float, value: float) -> None:
        self.points.append((time, value))

    def __len__(self) -> int:
        return len(self.points)

    def values(self) -> List[float]:
        return [value for _, value in self.points]

    def times(self) -> List[float]:
        return [time for time, _ in self.points]

    def last(self) -> Tuple[float, float]:
        if not self.points:
            raise ValueError("time series is empty")
        return self.points[-1]

    def value_at(self, time: float) -> float:
        """Return the last recorded value at or before ``time`` (step function)."""
        best = None
        for point_time, value in self.points:
            if point_time <= time:
                best = value
            else:
                break
        if best is None:
            raise ValueError(f"no sample at or before t={time}")
        return best


class MetricsRegistry:
    """Counters, histograms and time series addressed by name."""

    def __init__(self) -> None:
        self.counters: Dict[str, float] = defaultdict(float)
        self.histograms: Dict[str, Histogram] = defaultdict(Histogram)
        self.series: Dict[str, TimeSeries] = defaultdict(TimeSeries)

    def increment(self, name: str, amount: float = 1.0) -> None:
        self.counters[name] += amount

    def counter(self, name: str) -> float:
        return self.counters.get(name, 0.0)

    def observe(self, name: str, value: float) -> None:
        self.histograms[name].record(value)

    def histogram(self, name: str) -> Histogram:
        return self.histograms[name]

    def record_point(self, name: str, time: float, value: float) -> None:
        self.series[name].record(time, value)

    def timeseries(self, name: str) -> TimeSeries:
        return self.series[name]

    def snapshot(self) -> Dict[str, float]:
        """Return a flat view of counters plus histogram means (for reports)."""
        flat: Dict[str, float] = dict(self.counters)
        for name, histogram in self.histograms.items():
            if histogram.count:
                flat[f"{name}.mean"] = histogram.mean
                flat[f"{name}.count"] = float(histogram.count)
        return flat

    @staticmethod
    def merge_histograms(histograms: Iterable[Histogram]) -> Histogram:
        merged = Histogram()
        for histogram in histograms:
            merged.samples.extend(histogram.samples)
        return merged


__all__ = ["Histogram", "TimeSeries", "MetricsRegistry"]
