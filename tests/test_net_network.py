"""Unit tests for the network substrate."""

import random

import pytest

from repro.net import (
    FixedLatency,
    LanProfile,
    LogNormalLatency,
    Network,
    NetworkConfig,
    UniformLatency,
    WanProfile,
)
from repro.net.latency import RegionalLatency, DEFAULT_REGIONS
from repro.sim import Simulator
from repro.sim.actor import Actor


class Recorder(Actor):
    """Test actor that records every delivered message with its time."""

    def __init__(self, sim, address):
        super().__init__(sim, address)
        self.received = []

    def on_message(self, payload, sender):
        self.received.append((self.sim.now, payload, sender))


def make_net(seed=0, latency=None, config=None):
    sim = Simulator(seed=seed)
    network = Network(sim, latency_model=latency or FixedLatency(0.01), config=config)
    return sim, network


class TestDelivery:
    def test_basic_delivery_with_fixed_latency(self):
        sim, network = make_net()
        a, b = Recorder(sim, "a"), Recorder(sim, "b")
        network.register(a)
        network.register(b)
        network.send("a", "b", {"hello": 1}, size_bytes=100)
        sim.run()
        assert len(b.received) == 1
        time, payload, sender = b.received[0]
        assert payload == {"hello": 1}
        assert sender == "a"
        # latency 0.01 plus transfer of (100+64)/8e6 seconds
        assert time == pytest.approx(0.01 + 164 / 8_000_000)

    def test_unregistered_receiver_drops_message(self):
        sim, network = make_net()
        a = Recorder(sim, "a")
        network.register(a)
        network.send("a", "ghost", "payload")
        sim.run()
        assert sim.metrics.counter("net.messages_undeliverable") == 1

    def test_dead_actor_does_not_receive(self):
        sim, network = make_net()
        a, b = Recorder(sim, "a"), Recorder(sim, "b")
        network.register(a)
        network.register(b)
        b.shutdown()
        network.send("a", "b", "payload")
        sim.run()
        assert b.received == []

    def test_large_transfer_takes_bandwidth_time(self):
        sim, network = make_net(config=NetworkConfig(bandwidth_bytes_per_s=1_000_000))
        a, b = Recorder(sim, "a"), Recorder(sim, "b")
        network.register(a)
        network.register(b)
        network.send("a", "b", "blob", size_bytes=1_000_000)
        sim.run()
        delivery_time = b.received[0][0]
        assert delivery_time >= 1.0  # at least one second of transfer time

    def test_downlink_serialization_of_concurrent_transfers(self):
        # Two 1 MB messages to the same receiver must be serialized on its
        # downlink: the second arrives roughly one transfer time later.
        sim, network = make_net(config=NetworkConfig(bandwidth_bytes_per_s=1_000_000))
        a, b, c = Recorder(sim, "a"), Recorder(sim, "b"), Recorder(sim, "c")
        for actor in (a, b, c):
            network.register(actor)
        network.send("a", "c", "blob1", size_bytes=1_000_000)
        network.send("b", "c", "blob2", size_bytes=1_000_000)
        sim.run()
        times = sorted(t for t, _, _ in c.received)
        assert len(times) == 2
        assert times[1] - times[0] >= 0.9

    def test_loss_probability_drops_messages(self):
        sim, network = make_net(config=NetworkConfig(loss_probability=1.0))
        a, b = Recorder(sim, "a"), Recorder(sim, "b")
        network.register(a)
        network.register(b)
        assert network.send("a", "b", "x") is None
        sim.run()
        assert b.received == []
        assert sim.metrics.counter("net.messages_lost") == 1

    def test_partition_blocks_and_heal_restores(self):
        sim, network = make_net()
        a, b = Recorder(sim, "a"), Recorder(sim, "b")
        network.register(a)
        network.register(b)
        network.partition(["b"])
        network.send("a", "b", "lost")
        sim.run()
        assert b.received == []
        network.heal(["b"])
        network.send("a", "b", "found")
        sim.run()
        assert len(b.received) == 1

    def test_send_burst_counts_dispatched(self):
        sim, network = make_net()
        a, b, c = Recorder(sim, "a"), Recorder(sim, "b"), Recorder(sim, "c")
        for actor in (a, b, c):
            network.register(actor)
        count = network.send_burst("a", [("b", "x", 10), ("c", "y", 10)])
        assert count == 2
        sim.run()
        assert len(b.received) == 1
        assert len(c.received) == 1

    def test_metrics_track_messages(self):
        sim, network = make_net()
        a, b = Recorder(sim, "a"), Recorder(sim, "b")
        network.register(a)
        network.register(b)
        network.send("a", "b", "x", size_bytes=100)
        sim.run()
        assert sim.metrics.counter("net.messages_sent") == 1
        assert sim.metrics.counter("net.messages_delivered") == 1
        assert sim.metrics.counter("net.bytes_sent") == 100


class TestSidePreservingSplits:
    def _quad(self, seed=2, config=None):
        sim, network = make_net(seed=seed, config=config)
        actors = {name: Recorder(sim, name) for name in ("a", "b", "c", "d")}
        for actor in actors.values():
            network.register(actor)
        return sim, network, actors

    def test_split_blocks_cross_side_only(self):
        sim, network, actors = self._quad()
        network.split([("a", "b"), ("c", "d")])
        network.send("a", "b", "same-side", 64)     # within side 0
        network.send("c", "d", "same-side-2", 64)   # within side 1
        network.send("a", "c", "cross", 64)         # across -> dropped
        network.send("d", "b", "cross-2", 64)       # across -> dropped
        sim.run_until_idle()
        assert [p for _, p, _ in actors["b"].received] == ["same-side"]
        assert [p for _, p, _ in actors["d"].received] == ["same-side-2"]
        assert actors["c"].received == []
        assert sim.metrics.counter("net.messages_partitioned") == 2

    def test_unnamed_addresses_unaffected(self):
        sim, network, actors = self._quad()
        network.split([("a",), ("c",)])
        network.send("a", "b", "to-unnamed", 64)
        network.send("b", "c", "from-unnamed", 64)
        sim.run_until_idle()
        assert len(actors["b"].received) == 1
        assert len(actors["c"].received) == 1

    def test_merge_restores_connectivity(self):
        sim, network, actors = self._quad()
        split_id = network.split([("a", "b"), ("c", "d")])
        network.send("a", "c", "lost", 64)
        network.merge(split_id)
        network.send("a", "c", "after-heal", 64)
        sim.run_until_idle()
        assert [p for _, p, _ in actors["c"].received] == ["after-heal"]

    def test_split_respected_on_all_send_paths(self):
        sim, network, actors = self._quad()
        network.split([("a", "b"), ("c", "d")])
        network.send("a", "c", "x", 64)
        network.send_one("a", "c", "x", 64)
        network.send_burst("a", [("c", "x", 64), ("d", "x", 64)])
        network.send_fanout("a", ["c", "d"], "x", 64)
        sim.run_until_idle()
        assert actors["c"].received == [] and actors["d"].received == []
        assert sim.metrics.counter("net.messages_partitioned") == 6

    def test_inflight_message_dropped_when_split_forms(self):
        sim, network, actors = self._quad()
        network.send("a", "c", "in-flight", 64)  # scheduled before the split
        network.split([("a", "b"), ("c", "d")])
        sim.run_until_idle()
        assert actors["c"].received == []

    def test_overlapping_splits_compose(self):
        sim, network, actors = self._quad()
        first = network.split([("a",), ("c",)])
        network.split([("a",), ("d",)])
        network.merge(first)
        network.send("a", "c", "now-ok", 64)   # first split merged
        network.send("a", "d", "blocked", 64)  # second still active
        sim.run_until_idle()
        assert len(actors["c"].received) == 1
        assert actors["d"].received == []

    def test_crosses_split_is_symmetric_free_of_state(self):
        sim, network, _ = self._quad()
        network.split([("a", "b"), ("c", "d")])
        assert network.crosses_split("a", "c")
        assert network.crosses_split("c", "a")
        assert not network.crosses_split("a", "b")
        assert not network.crosses_split("a", "unknown")


class TestLatencyModels:
    def test_fixed(self):
        rng = random.Random(0)
        model = FixedLatency(0.005)
        assert model.sample(rng, "a", "b") == 0.005

    def test_uniform_within_bounds(self):
        rng = random.Random(0)
        model = UniformLatency(low=0.001, high=0.002)
        for _ in range(100):
            sample = model.sample(rng, "a", "b")
            assert 0.001 <= sample <= 0.002

    def test_lognormal_positive_and_floored(self):
        rng = random.Random(0)
        model = LogNormalLatency(median=0.001, sigma=0.5, floor=0.0005)
        samples = [model.sample(rng, "a", "b") for _ in range(200)]
        assert all(sample >= 0.0005 for sample in samples)

    def test_lan_profile_is_sub_5ms_typically(self):
        rng = random.Random(0)
        model = LanProfile()
        samples = [model.sample(rng, "a", "b") for _ in range(200)]
        assert sum(samples) / len(samples) < 0.005

    def test_wan_profile_inter_region_slower_than_intra(self):
        addresses = [f"n{i}" for i in range(16)]
        model = WanProfile(addresses)
        rng = random.Random(0)
        # n0 and n8 share a region (round robin over 8 regions); n0 and n1 differ.
        intra = [model.sample(rng, "n0", "n8") for _ in range(50)]
        inter = [model.sample(rng, "n0", "n4") for _ in range(50)]
        assert sum(intra) / len(intra) < sum(inter) / len(inter)

    def test_wan_assign_round_robin(self):
        model = WanProfile()
        regions = [model.assign(f"x{i}") for i in range(len(DEFAULT_REGIONS))]
        assert len(set(regions)) == len(DEFAULT_REGIONS)

    def test_regional_symmetry(self):
        model = RegionalLatency(region_of={"a": "eu-west", "b": "ap-sydney"})
        assert model.base_latency("a", "b") == model.base_latency("b", "a")

    def test_regional_unknown_pair_uses_default(self):
        model = RegionalLatency(region_of={"a": "mars", "b": "venus"})
        assert model.base_latency("a", "b") == model.default_inter_region
