#!/usr/bin/env python3
"""AShare example: publish, search, replicate and read files.

Builds a 20-node AShare deployment over Atum, PUTs a few files, lets the
randomized replication feedback loop create replicas, searches the metadata
index, and reads a file back -- once from correct replicas and once when a
Byzantine replica holder corrupts its copy (the integrity check detects the
corruption and re-pulls the affected chunks).

Run with:  python examples/file_sharing.py
"""

from repro.apps.ashare import AShareCluster
from repro.core.cluster import AtumCluster
from repro.core.config import AtumParameters, SmrKind

MB = 1024 * 1024


def main() -> None:
    params = AtumParameters(
        hc=3, rwl=5, gmax=8, gmin=4, smr_kind=SmrKind.SYNC, round_duration=0.5,
        expected_system_size=20,
    )
    atum = AtumCluster(params, seed=11)
    addresses = [f"peer-{i}" for i in range(20)]
    byzantine = ["peer-13"]
    atum.build_static(addresses, byzantine=byzantine)
    share = AShareCluster(atum, rho=4)

    # PUT two files; metadata is broadcast through Atum to every node's index.
    share.put("peer-0", "holiday-photos.tar", size_bytes=50 * MB, num_chunks=10)
    share.put("peer-1", "datasets/measurements.csv", size_bytes=10 * MB, num_chunks=10)
    atum.run(until=300.0)

    count = share.replica_count("peer-0", "holiday-photos.tar", as_seen_by="peer-5")
    print(f"'holiday-photos.tar' now has {count} replicas (target rho=4)")

    # SEARCH from any node's local index.
    results = share.search("peer-7", "photos")
    print(f"search('photos') -> {[(r.owner, r.name) for r in results]}")

    # GET: parallel chunked pull with integrity checks.
    latency = share.get("peer-9", "peer-0", "holiday-photos.tar")
    print(f"reading 50 MB from correct replicas took {latency:.1f}s "
          f"({latency / 50:.2f} s/MB)")

    # Seed a replica at the Byzantine node: it will corrupt what it stores, the
    # integrity check catches it, and the affected chunks are re-pulled.
    share.put("peer-2", "important.bin", size_bytes=20 * MB, num_chunks=10)
    atum.run(until=atum.sim.now + 60.0)
    share.seed_replicas("peer-2", "important.bin", ["peer-13", "peer-4"])
    latency = share.get("peer-9", "peer-2", "important.bin")
    print(f"reading 20 MB with one corrupted replica took {latency:.1f}s "
          f"(integrity checks re-pulled the bad chunks)")

    # DELETE removes the file and its replicas everywhere.
    share.delete("peer-0", "holiday-photos.tar")
    atum.run(until=atum.sim.now + 60.0)
    print(f"after DELETE, search('photos') -> {share.search('peer-7', 'photos')}")


if __name__ == "__main__":
    main()
