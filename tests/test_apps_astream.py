"""Tests for AStream, the two-tier streaming system."""

import pytest

from repro.apps.astream import AStreamSession, StreamChunk
from repro.core.cluster import AtumCluster
from repro.core.config import AtumParameters, SmrKind


def small_params(kind=SmrKind.SYNC):
    return AtumParameters(hc=3, rwl=5, gmax=6, gmin=3, smr_kind=kind, round_duration=0.5,
                          expected_system_size=30)


def make_session(n=20, byzantine=(), policy="single", seed=0, kind=SmrKind.SYNC):
    atum = AtumCluster(small_params(kind), seed=seed)
    addresses = [f"n{i}" for i in range(n)]
    atum.build_static(addresses, byzantine=byzantine)
    session = AStreamSession(
        atum,
        source="n0",
        forward_policy=policy,
        chunk_bytes=250_000,
        rate_bytes_per_s=1_000_000,
        pull_timeout=1.0,
    )
    return atum, session, addresses


class TestForestConstruction:
    def test_every_member_has_at_least_one_parent(self):
        atum, session, addresses = make_session()
        for address in addresses:
            if address == "n0":
                continue
            state = session.states.get(address)
            assert state is not None and len(state.parents) >= 1

    def test_source_neighbors_use_source_as_parent(self):
        atum, session, addresses = make_session()
        source_group = atum.engine.node_group["n0"]
        for member in atum.engine.groups[source_group].members:
            if member == "n0":
                continue
            assert session.states[member].parents == ["n0"]

    def test_children_lists_are_consistent_with_parents(self):
        atum, session, addresses = make_session()
        for address, state in session.states.items():
            for parent in state.parents:
                assert address in session.states[parent].children

    def test_source_must_be_member(self):
        atum = AtumCluster(small_params())
        atum.build_static([f"n{i}" for i in range(10)])
        outsider = atum.add_node("outsider")
        with pytest.raises(RuntimeError):
            AStreamSession(atum, source="outsider")


class TestStreaming:
    def test_all_nodes_receive_all_chunks(self):
        atum, session, addresses = make_session(n=20)
        count = session.stream(duration_s=1.0)
        atum.run(until=60.0)
        for index in range(count):
            assert session.delivery_fraction(index) == 1.0

    def test_tier2_latency_is_sub_second_scale(self):
        atum, session, addresses = make_session(n=20)
        session.stream(duration_s=1.0)
        atum.run(until=60.0)
        latencies = session.tier2_latencies()
        assert latencies
        # Figure 12: second-tier latencies are hundreds of milliseconds.
        assert sorted(latencies)[len(latencies) // 2] < 2.0

    def test_chunk_digest_is_stable(self):
        chunk_a = StreamChunk("s", 0, 1000, 0.0)
        chunk_b = StreamChunk("s", 0, 1000, 5.0)  # creation time not part of digest
        assert chunk_a.digest == chunk_b.digest

    def test_double_cycle_policy_not_slower_than_single(self):
        def median_latency(policy, seed):
            atum, session, _ = make_session(n=20, policy=policy, seed=seed)
            session.stream(duration_s=1.0)
            atum.run(until=60.0)
            samples = sorted(session.tier2_latencies())
            return samples[len(samples) // 2]

        single = median_latency("single", seed=2)
        double = median_latency("double", seed=2)
        assert double <= single * 1.5

    def test_byzantine_parents_do_not_block_delivery(self):
        # Byzantine nodes never push stream data; children fall back to their
        # other parents (at least one is correct) or pull after the timeout.
        atum, session, addresses = make_session(n=24, byzantine=["n3", "n7"], seed=5)
        count = session.stream(duration_s=0.5)
        atum.run(until=120.0)
        for index in range(count):
            assert session.delivery_fraction(index) == 1.0

    def test_pull_fallback_counts_when_parents_fail(self):
        atum, session, addresses = make_session(n=24, byzantine=["n3", "n7", "n9"], seed=6)
        session.stream(duration_s=0.5)
        atum.run(until=120.0)
        # Pulls may or may not be needed depending on topology, but the
        # mechanism must never deliver an invalid chunk.
        assert atum.sim.metrics.counter("astream.invalid_chunks") == 0


class TestSnapshots:
    """Stream-prefix snapshot()/restore() with certified digests (ISSUE 7)."""

    def build(self):
        atum, session, addresses = make_session()
        session.stream(duration_s=0.5)
        atum.run(until=60.0)
        return atum, session

    def test_snapshot_restore_round_trips_a_prefix(self):
        atum, session = self.build()
        snapshot = session.snapshot("n5")
        digest = session.snapshot_digest("n5")
        assert snapshot["received"]  # the run actually delivered chunks
        session.states["n5"].received_chunks.clear()
        session.states["n5"].known_digests.clear()
        assert session.restore("n5", snapshot, expected_digest=digest)
        assert session.snapshot_digest("n5") == digest
        assert atum.sim.metrics.counter("astream.snapshots_restored") == 1

    def test_restore_rejects_truncated_prefix_under_certified_digest(self):
        atum, session = self.build()
        snapshot = session.snapshot("n5")
        digest = session.snapshot_digest("n5")
        truncated = dict(snapshot, received=snapshot["received"][:-1])
        # The certified digest covers the full prefix: truncation is caught.
        assert not session.restore("n7", truncated, expected_digest=digest)
        assert atum.sim.metrics.counter("astream.snapshot_rejected") == 1

    def test_restore_rejects_holey_prefix_and_forged_chunk_digests(self):
        from repro.crypto.digest import digest_object

        atum, session = self.build()
        snapshot = session.snapshot("n5")
        holey = dict(snapshot, received=tuple(snapshot["received"][1:]))
        assert not session.restore("n7", holey, expected_digest=digest_object(holey))
        forged_digests = tuple((index, "forged") for index, _ in snapshot["digests"])
        forged = dict(snapshot, digests=forged_digests)
        assert not session.restore("n7", forged, expected_digest=digest_object(forged))
        wrong_stream = dict(snapshot, stream="stream-other")
        assert not session.restore("n7", wrong_stream)
        assert atum.sim.metrics.counter("astream.snapshot_rejected") == 3
