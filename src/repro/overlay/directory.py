"""Split-brain membership reconciliation: per-side directories + merge.

A side-preserving split leaves every side internally healthy, so each side
keeps processing membership traffic — joins complete against the groups it
can reach, heartbeat majorities evict the unreachable.  Before this module
the simulation let one global membership engine serve both sides, which
silently assumed a coordinator no real split-brain deployment has.  This
module makes the per-side divergence explicit and the heal deterministic:

* While a split is active, a :class:`SideDirectory` per side records the
  joins, leaves and evictions *that side* decided.  Cross-side evictions —
  a side's majority deciding to evict a node it cannot even reach — are
  **deferred**: recorded in the deciding side's directory but not executed,
  because executing them would mutually evict both sides' straddlers and
  shred the overlay for what is only a transient partition.
* At heal, :func:`merge_directories` folds the sides deterministically:
  **evicted-on-either-side stays evicted** (an eviction is a safety
  decision; merging must not resurrect a node half the system convicted),
  and **joined-on-one-side is re-validated against the merged view** — a
  join is revoked if the merged eviction set contains the joiner.
* :class:`repro.faults.invariants.InvariantMonitor` re-computes the merge
  from the recorded side snapshots at finalize and flags
  ``directory_divergence`` (stored decision != recomputed decision) and
  ``evicted_readmitted_across_sides`` (a merged-evicted address still in
  the membership) violations.

The coordinator is pure bookkeeping: it owns no RNG and schedules nothing,
so clusters that never split carry no new state and stay byte-identical.
Overlapping concurrent splits are supported by running one coordinator per
split id (see :meth:`repro.core.cluster.AtumCluster.split`): each heal
merges only its own coordinator, an eviction executes only if *every*
active coordinator agrees it is same-side, and because leaves never feed
the merge decision, the decisions are identical under every heal order —
property-tested in ``tests/test_directory.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple


@dataclass
class SideDirectory:
    """One partition side's independently evolving membership record.

    ``members`` is the side's snapshot at split time; ``joined``,
    ``left`` and ``evicted`` accumulate the decisions this side made
    while the split was active.  ``ops`` is the replicated op log (the
    thing each side's vgroups agree on internally) — the merge consumes
    only the sets, but the log is what the invariant monitor replays to
    check the stored merge decision was not fabricated.
    """

    side_index: int
    members: FrozenSet[str]
    joined: set = field(default_factory=set)
    left: set = field(default_factory=set)
    evicted: set = field(default_factory=set)
    ops: List[Tuple[float, str, str]] = field(default_factory=list)

    def record(self, now: float, kind: str, address: str) -> None:
        self.ops.append((now, kind, address))
        if kind == "join":
            self.joined.add(address)
        elif kind == "leave":
            self.left.add(address)
        elif kind in ("evict", "evict_deferred"):
            self.evicted.add(address)

    def snapshot(self) -> Dict[str, object]:
        """A plain, order-normalised copy for post-run invariant checks."""
        return {
            "side_index": self.side_index,
            "members": tuple(sorted(self.members)),
            "joined": tuple(sorted(self.joined)),
            "left": tuple(sorted(self.left)),
            "evicted": tuple(sorted(self.evicted)),
            "ops": tuple(self.ops),
        }


@dataclass(frozen=True)
class MergeDecision:
    """The deterministic outcome of reconciling all sides at heal.

    Attributes:
        evicted: Union of every side's evictions — stays evicted.
        admitted: Joined on some side and *not* in ``evicted``: the join
            survives re-validation against the merged view.
        revoked: Joined on some side but evicted on another — the
            re-validation fails and the join is rolled back.
    """

    evicted: FrozenSet[str]
    admitted: FrozenSet[str]
    revoked: FrozenSet[str]


def merge_directories(sides: Sequence[SideDirectory]) -> MergeDecision:
    """Deterministically reconcile per-side directories.

    Pure function of the side sets (no times, no ordering between sides),
    so every node computing it over the same replicated directories gets
    the same answer — which is exactly what the invariant monitor
    re-checks after the run.
    """
    evicted: set = set()
    joined: set = set()
    for side in sides:
        evicted |= side.evicted
        joined |= side.joined
    revoked = joined & evicted
    admitted = joined - evicted
    return MergeDecision(
        evicted=frozenset(evicted),
        admitted=frozenset(admitted),
        revoked=frozenset(revoked),
    )


class SplitBrainCoordinator:
    """Tracks one active split's per-side directories for a cluster.

    The cluster routes membership events here while the split is active
    (see :meth:`repro.core.cluster.AtumCluster.split`):

    * ``record_join`` binds the joiner to its host group's side;
    * ``record_eviction`` answers whether the eviction may execute now
      (decider and target on the same side) or must be deferred to the
      merge (cross-side);
    * ``merge`` computes the :class:`MergeDecision` the cluster enforces
      at heal.
    """

    def __init__(self, sim, sides: Sequence[Iterable[str]]) -> None:
        self.sim = sim
        self.sides: List[SideDirectory] = [
            SideDirectory(side_index=index, members=frozenset(side))
            for index, side in enumerate(sides)
        ]
        self._side_of: Dict[str, int] = {}
        for directory in self.sides:
            for address in directory.members:
                self._side_of[address] = directory.side_index
        self.merged: Optional[MergeDecision] = None
        sim.metrics.increment("directory.splits")

    # ----------------------------------------------------------------- queries

    def side_of(self, address: str) -> Optional[int]:
        """The side an address lives on (``None`` for unsplit bystanders)."""
        return self._side_of.get(address)

    def side_snapshots(self) -> Tuple[Dict[str, object], ...]:
        return tuple(directory.snapshot() for directory in self.sides)

    # ---------------------------------------------------------------- recording

    def record_join(self, address: str, host_side: Optional[int]) -> Optional[int]:
        """A join completed on ``host_side`` during the split.

        Returns the side the joiner was bound to (``None`` when the host
        group lies entirely outside the split — the join is then an
        ordinary, split-irrelevant join).
        """
        if host_side is None or host_side >= len(self.sides):
            return None
        self._side_of[address] = host_side
        self.sides[host_side].record(self.sim.now, "join", address)
        self.sim.metrics.increment("directory.joins_recorded")
        return host_side

    def record_leave(self, address: str) -> None:
        """A voluntary leave (or crash-driven departure) on some side."""
        side = self._side_of.get(address)
        if side is not None:
            self.sides[side].record(self.sim.now, "leave", address)

    def record_eviction(self, deciders: Sequence[str], target: str) -> bool:
        """An eviction majority formed; may it execute now?

        Returns True when the deciding majority and the target share a
        side (or either is outside the split): the eviction is recorded
        and proceeds as usual.  Returns False for a cross-side eviction:
        it is recorded in the *deciding* sides' directories and deferred —
        the merge enforces it at heal (evicted-on-either-side stays
        evicted), but executing it mid-split would dismantle overlay
        state the other side is actively using.

        Deciders may span sides — e.g. a suspicion majority assembled
        from reports that straddle an already-healed overlapping split.
        The rule is membership-local: the eviction executes iff *some*
        decider shares the target's side (that side's majority really can
        observe the target), so stale off-side deciders can never veto an
        on-side majority into an eternal deferral.
        """
        decider_sides = sorted(
            {
                side
                for side in (self._side_of.get(decider) for decider in deciders)
                if side is not None
            }
        )
        target_side = self._side_of.get(target)
        if target_side is None or not decider_sides or target_side in decider_sides:
            side = (
                target_side
                if target_side is not None
                else (decider_sides[0] if decider_sides else None)
            )
            if side is not None:
                self.sides[side].record(self.sim.now, "evict", target)
            return True
        for side in decider_sides:
            self.sides[side].record(self.sim.now, "evict_deferred", target)
        self.sim.metrics.increment("directory.evictions_deferred")
        return False

    # -------------------------------------------------------------------- merge

    def merge(self) -> MergeDecision:
        """Reconcile the sides at heal; idempotent."""
        if self.merged is None:
            self.merged = merge_directories(self.sides)
            self.sim.metrics.increment("directory.merges")
        return self.merged


__all__ = [
    "SideDirectory",
    "MergeDecision",
    "merge_directories",
    "SplitBrainCoordinator",
]
