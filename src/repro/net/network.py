"""The simulated network connecting actors.

The network models the aspects of the paper's deployment that matter for
protocol behaviour:

* per-message propagation latency (:mod:`repro.net.latency`);
* transfer time proportional to message size and constrained by per-node
  download bandwidth (this is what makes the incast / "throughput collapse"
  effect of the paper's section 5.1 observable);
* optional message loss and network partitions;
* delivery only to registered, alive actors (a crashed or departed node
  silently drops traffic, like a closed socket).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from heapq import heappush
from typing import Any, Dict, Iterable, Optional, Set

from repro.sim.events import Event

from repro.core.middleware import MiddlewareContext, MiddlewareError
from repro.net.latency import LatencyModel, LanProfile
from repro.net.message import CorruptedPayload, Message
from repro.sim.actor import Actor
from repro.sim.simulator import Simulator


@dataclass
class NetworkConfig:
    """Tunable parameters of the simulated network.

    Attributes:
        bandwidth_bytes_per_s: Per-node download bandwidth.  EC2 micro
            instances (the paper's node type) provide on the order of
            8 MB/s of sustained throughput.
        loss_probability: Probability that an individual message is dropped.
        headers_bytes: Fixed per-message overhead added to every payload.
        randomized_send_order: When a burst of messages is submitted with
            :meth:`Network.send_burst`, shuffle the order to avoid incast
            (paper section 5.1, "Randomized message sending").
    """

    bandwidth_bytes_per_s: float = 8_000_000.0
    loss_probability: float = 0.0
    headers_bytes: int = 64
    randomized_send_order: bool = True
    #: Batch same-time fan-out deliveries into one simulation event.  All
    #: protocol-visible behaviour (delivery times, delivery order, callback
    #: interleaving, figures) is provably identical to per-message events —
    #: consecutive sequence numbers at one timestamp admit no interleaving —
    #: but the ``(time, tag)`` event trace gets shorter, so runs with this
    #: flag are not trace-comparable to runs without it.  Off by default to
    #: keep golden traces stable; the protocol-speed benchmark enables it.
    coalesced_fanout_delivery: bool = False


class _Delivery(Event):
    """A queued in-flight delivery: ONE slotted object per message.

    Replaces the ``Message`` + ``functools.partial`` + ``Event`` triple on the
    burst fast path: the object carries the wire fields, *is* the scheduled
    event, and *is* its own callback (``callback = self``).  Semantics are
    identical to :meth:`Network._deliver`.
    """

    __slots__ = ("network", "sender", "receiver", "payload", "sent_at")

    # Shadow the parent's ``priority``/``tag``/``seq`` slots with class-level
    # constants: every delivery shares the first two, and ``seq`` is only
    # carried in the heap tuple, so per-instance stores would be pure
    # overhead.  (They are read-only for deliveries; ``cancelled`` stays a
    # real slot because ``cancel()`` writes it.)
    priority = 0
    tag = "net.deliver"
    seq = -1

    def __init__(
        self,
        time: float,
        network: "Network",
        sender: str,
        receiver: str,
        payload: Any,
        sent_at: float,
    ) -> None:
        self.time = time
        self.callback = self
        self.cancelled = False
        self.network = network
        self.sender = sender
        self.receiver = receiver
        self.payload = payload
        self.sent_at = sent_at

    def __call__(self) -> None:
        network = self.network
        receiver = self.receiver
        actor = network._actors.get(receiver)
        counters = network._counters
        if actor is None or not actor.alive:
            counters["net.messages_undeliverable"] += 1.0
            return
        if receiver in network._partitioned:
            counters["net.messages_partitioned"] += 1.0
            return
        if network._splits and network.crosses_split(self.sender, receiver):
            # A split that formed while the message was in flight.
            counters["net.messages_partitioned"] += 1.0
            return
        counters["net.messages_delivered"] += 1.0
        # ``self.time`` equals the simulator clock at delivery, saving the
        # ``network.sim._now`` chain on every message.
        network._delivery_latency.record(self.time - self.sent_at)
        actor.on_message(self.payload, self.sender)


class _FanoutDelivery(Event):
    """One simulation event delivering a same-time slice of a fan-out burst.

    Used only when :attr:`NetworkConfig.coalesced_fanout_delivery` is on.
    Receivers are stored in batch order and delivered in that order, which is
    exactly the order consecutive per-message events would have fired in (one
    timestamp, consecutive sequence numbers — nothing can interleave).
    """

    __slots__ = ("network", "sender", "payload", "sent_at", "receivers")

    priority = 0
    tag = "net.deliver"
    seq = -1

    def __init__(
        self,
        time: float,
        network: "Network",
        sender: str,
        payload: Any,
        sent_at: float,
        receivers: list,
    ) -> None:
        self.time = time
        self.callback = self
        self.cancelled = False
        self.network = network
        self.sender = sender
        self.payload = payload
        self.sent_at = sent_at
        self.receivers = receivers

    def __call__(self) -> None:
        network = self.network
        actors_get = network._actors.get
        counters = network._counters
        partitioned = network._partitioned
        splits = network._splits
        record = network._delivery_latency.record
        latency = self.time - self.sent_at
        payload = self.payload
        sender = self.sender
        delivered = 0
        for receiver in self.receivers:
            actor = actors_get(receiver)
            if actor is None or not actor.alive:
                counters["net.messages_undeliverable"] += 1.0
                continue
            if (partitioned and receiver in partitioned) or (
                splits and network.crosses_split(sender, receiver)
            ):
                counters["net.messages_partitioned"] += 1.0
                continue
            delivered += 1
            record(latency)
            actor.on_message(payload, sender)
        if delivered:
            counters["net.messages_delivered"] += float(delivered)


class Network:
    """Delivers messages between registered actors over a latency model."""

    def __init__(
        self,
        sim: Simulator,
        latency_model: Optional[LatencyModel] = None,
        config: Optional[NetworkConfig] = None,
    ) -> None:
        self.sim = sim
        self.latency_model = latency_model or LanProfile()
        self.config = config or NetworkConfig()
        self._actors: Dict[str, Actor] = {}
        self._partitioned: Set[str] = set()
        # Active side-preserving splits: split id -> {address: side index}.
        # A message is dropped iff some active split maps both endpoints to
        # *different* sides; addresses a split does not name are unaffected.
        # Empty dict = one truthiness check on the fast paths, nothing more.
        self._splits: Dict[int, Dict[str, int]] = {}
        self._split_seq = 0
        self._rng = sim.rng.stream("network")
        # Compiled on_send pipeline of the installed middleware chain (see
        # repro.core.middleware): when non-None, every send path detours
        # through _schedule_intercepted.  ``None`` keeps the inlined fast
        # paths bit-identical to a build without the middleware subsystem —
        # one attribute check, no extra RNG draws, no context objects.
        self._send_hooks = None
        self._middleware = None
        self._send_scenario = ""
        # Tracks when each receiving node's downlink frees up, used to model
        # queueing of large transfers at the receiver.
        self._downlink_free_at: Dict[str, float] = {}
        # Hot-path handles: the burst pipeline updates counters and the
        # delivery-latency histogram directly instead of going through the
        # registry methods on every message.
        self._counters = sim.metrics.counters
        self._delivery_latency = sim.metrics.histogram("net.delivery_latency")

    # --------------------------------------------------------------- membership

    def register(self, actor: Actor) -> None:
        """Attach an actor to the network so it can receive messages."""
        self._actors[actor.address] = actor

    def unregister(self, address: str) -> None:
        """Detach an actor; future messages to it are dropped."""
        self._actors.pop(address, None)
        self._downlink_free_at.pop(address, None)

    def actor(self, address: str) -> Optional[Actor]:
        return self._actors.get(address)

    def addresses(self) -> Iterable[str]:
        return self._actors.keys()

    def __contains__(self, address: str) -> bool:
        return address in self._actors

    # --------------------------------------------------------------- middleware

    def install_middleware(self, chain) -> None:
        """Compile ``chain``'s ``on_send`` pipeline onto the send paths.

        Installed once (normally by :meth:`AtumCluster.install_middleware
        <repro.core.cluster.AtumCluster.install_middleware>`; bare-network
        harnesses may call it directly).  Installing a second chain over an
        existing one raises :class:`~repro.core.middleware.MiddlewareError`
        — compose middleware into one chain instead.  Late additions to the
        installed chain recompile the pipeline automatically.
        """
        if self._middleware is not None:
            raise MiddlewareError(
                "a middleware chain is already installed on this network; "
                "add to it instead of installing a second one"
            )
        self._middleware = chain
        chain.subscribe(self._compile_send_hooks)
        self._compile_send_hooks()

    def clear_middleware(self) -> None:
        """Restore the unperturbed fast paths (the chain may be re-installed)."""
        self._middleware = None
        self._send_hooks = None
        self._send_scenario = ""

    def _compile_send_hooks(self) -> None:
        chain = self._middleware
        if chain is None:
            self._send_hooks = None
            self._send_scenario = ""
        else:
            self._send_hooks = chain.hooks("on_send")
            self._send_scenario = chain.scenario

    # --------------------------------------------------------------- partitions

    def partition(self, addresses: Iterable[str]) -> None:
        """Isolate the given addresses: they can neither send nor receive."""
        self._partitioned.update(addresses)

    def heal(self, addresses: Optional[Iterable[str]] = None) -> None:
        """Heal a partition for the given addresses (or all, if omitted)."""
        if addresses is None:
            self._partitioned.clear()
        else:
            self._partitioned.difference_update(addresses)

    def is_partitioned(self, address: str) -> bool:
        return address in self._partitioned

    # ------------------------------------------------- side-preserving splits

    def split(self, sides: Iterable[Iterable[str]]) -> int:
        """Install a side-preserving split; returns its id (for :meth:`merge`).

        Each side stays internally connected; only messages whose endpoints
        fall on *different* sides are dropped.  Addresses not named by any
        side are unaffected.  Multiple splits compose: a message is dropped
        if any active split separates its endpoints.
        """
        mapping: Dict[str, int] = {}
        for index, side in enumerate(sides):
            for address in side:
                mapping[address] = index
        self._split_seq += 1
        self._splits[self._split_seq] = mapping
        return self._split_seq

    def merge(self, split_id: Optional[int] = None) -> None:
        """Heal a side-preserving split by id (or all splits, if omitted)."""
        if split_id is None:
            self._splits.clear()
        else:
            self._splits.pop(split_id, None)

    def bind_to_split(self, split_id: int, address: str, side_index: int) -> None:
        """Bind ``address`` to one side of an active split.

        Used when a node *joins* during a split: unbound addresses would
        straddle the split (reachable from every side), which no real
        partition permits — the joiner lives in some machine room, so it
        lands on exactly one side.  No-op for unknown split ids.
        """
        mapping = self._splits.get(split_id)
        if mapping is not None:
            mapping[address] = side_index

    def split_sides(self, split_id: int) -> Optional[Dict[str, int]]:
        """The address→side mapping of an active split (``None`` if healed)."""
        return self._splits.get(split_id)

    def crosses_split(self, sender: str, receiver: str) -> bool:
        """Whether any active split separates ``sender`` from ``receiver``."""
        for mapping in self._splits.values():
            side = mapping.get(sender)
            if side is None:
                continue
            other = mapping.get(receiver)
            if other is not None and other != side:
                return True
        return False

    # ------------------------------------------------------------------ sending

    def send(
        self,
        sender: str,
        receiver: str,
        payload: Any,
        size_bytes: int = 256,
    ) -> Optional[Message]:
        """Send one message.  Returns the in-flight message, or ``None`` if dropped."""
        message = Message(
            sender=sender,
            receiver=receiver,
            payload=payload,
            size_bytes=size_bytes,
            sent_at=self.sim.now,
        )
        return self._dispatch(message)

    def send_burst(
        self,
        sender: str,
        messages: Iterable[tuple[str, Any, int]],
    ) -> int:
        """Send a burst of ``(receiver, payload, size_bytes)`` messages.

        If :attr:`NetworkConfig.randomized_send_order` is enabled the burst is
        shuffled before submission, which spreads load over receivers' downlinks
        and mirrors Atum's randomized message sending.
        Returns the number of messages actually dispatched (not dropped).

        Bursts are the dominant send pattern (every group message is a burst of
        shares), so the whole routing pipeline is inlined here: batched counter
        updates, then per message one latency sample, one downlink update and
        one heap push of a slotted :class:`_Delivery` callback — no ``Message``
        or ``partial`` objects.  The per-message RNG draw order, scheduling
        arithmetic and event order are identical to sequential :meth:`send`
        calls, so simulations are trace-identical either way.
        """
        batch = list(messages)
        if self.config.randomized_send_order:
            self._rng.shuffle(batch)
        if not batch:
            return 0
        counters = self._counters
        counters["net.messages_sent"] += float(len(batch))
        if self._send_hooks is not None:
            total_bytes = 0
            dispatched = 0
            for receiver, payload, size_bytes in batch:
                total_bytes += size_bytes
                dispatched += self._schedule_intercepted(sender, receiver, payload, size_bytes)
            counters["net.bytes_sent"] += float(total_bytes)
            return dispatched
        sim = self.sim
        now = sim._now
        rng = self._rng
        config = self.config
        loss = config.loss_probability
        headers = config.headers_bytes
        bandwidth = config.bandwidth_bytes_per_s
        partitioned = self._partitioned
        sender_partitioned = bool(partitioned) and sender in partitioned
        check_partition = bool(partitioned)
        splits = self._splits
        latency_model = self.latency_model
        constant_latency = latency_model.constant_latency
        sample = latency_model.sample
        downlink = self._downlink_free_at
        downlink_get = downlink.get
        queue = sim.queue
        heap = queue._heap
        seq = queue._seq
        dispatched = 0
        total_bytes = 0
        # Float arithmetic below mirrors _route() + Simulator.schedule()
        # exactly (including the delay round-trip), keeping event times
        # bit-identical to the pre-batching path.
        if not check_partition and not splits and loss == 0.0 and constant_latency is not None:
            # Tight loop for the dominant case: healthy network, constant
            # latency model — no per-message drop checks or samples.
            propagated = now + constant_latency
            for receiver, payload, size_bytes in batch:
                total_bytes += size_bytes
                arrival_start = propagated
                free_at = downlink_get(receiver, 0.0)
                if free_at > arrival_start:
                    arrival_start = free_at
                delivery_time = arrival_start + (size_bytes + headers) / bandwidth
                downlink[receiver] = delivery_time
                scheduled = now + (delivery_time - now)
                event = _Delivery(scheduled, self, sender, receiver, payload, now)
                heappush(heap, (scheduled, 0, seq, event))
                seq += 1
            dispatched = len(batch)
        else:
            for receiver, payload, size_bytes in batch:
                total_bytes += size_bytes
                if (
                    check_partition and (sender_partitioned or receiver in partitioned)
                ) or (splits and self.crosses_split(sender, receiver)):
                    counters["net.messages_partitioned"] += 1.0
                    continue
                if loss > 0.0 and rng.random() < loss:
                    counters["net.messages_lost"] += 1.0
                    continue
                propagation = (
                    constant_latency
                    if constant_latency is not None
                    else sample(rng, sender, receiver)
                )
                arrival_start = now + propagation
                free_at = downlink_get(receiver, 0.0)
                if free_at > arrival_start:
                    arrival_start = free_at
                delivery_time = arrival_start + (size_bytes + headers) / bandwidth
                downlink[receiver] = delivery_time
                scheduled = now + (delivery_time - now)
                event = _Delivery(scheduled, self, sender, receiver, payload, now)
                heappush(heap, (scheduled, 0, seq, event))
                seq += 1
                dispatched += 1
        counters["net.bytes_sent"] += float(total_bytes)
        queue._seq = seq
        queue._live += dispatched
        return dispatched

    def send_fanout(
        self,
        sender: str,
        receivers: Iterable[str],
        payload: Any,
        size_bytes: int,
    ) -> int:
        """Send the same ``payload``/``size_bytes`` to every receiver.

        The m-destination group-message fan-out is the hottest send shape, and
        sharing the payload lets the whole per-destination tuple machinery of
        :meth:`send_burst` disappear: one shuffled receiver list, one transfer
        time computed for the burst, one slotted delivery object per receiver.
        RNG draws (shuffle permutation, loss draws), float arithmetic and
        event order are identical to the equivalent :meth:`send_burst` call.
        """
        config = self.config
        if config.randomized_send_order:
            batch = list(receivers)
            self._rng.shuffle(batch)
        elif isinstance(receivers, (list, tuple)):
            batch = receivers
        else:
            batch = list(receivers)
        if not batch:
            return 0
        counters = self._counters
        count = len(batch)
        counters["net.messages_sent"] += float(count)
        counters["net.bytes_sent"] += float(size_bytes * count)
        if self._send_hooks is not None:
            dispatched = 0
            for receiver in batch:
                dispatched += self._schedule_intercepted(sender, receiver, payload, size_bytes)
            return dispatched
        sim = self.sim
        now = sim._now
        partitioned = self._partitioned
        splits = self._splits
        loss = config.loss_probability
        constant_latency = self.latency_model.constant_latency
        downlink = self._downlink_free_at
        downlink_get = downlink.get
        queue = sim.queue
        heap = queue._heap
        seq = queue._seq
        transfer = (size_bytes + config.headers_bytes) / config.bandwidth_bytes_per_s
        dispatched = 0
        if not partitioned and not splits and loss == 0.0 and constant_latency is not None:
            propagated = now + constant_latency
            if config.coalesced_fanout_delivery:
                # Bucket consecutive same-delivery-time receivers into one
                # event each.  Bucketing by run keeps delivery order
                # identical to per-message events (see _FanoutDelivery).
                bucket_time = None
                bucket: Optional[list] = None
                for receiver in batch:
                    arrival_start = downlink_get(receiver, 0.0)
                    if arrival_start < propagated:
                        arrival_start = propagated
                    delivery_time = arrival_start + transfer
                    downlink[receiver] = delivery_time
                    if delivery_time == bucket_time:
                        bucket.append(receiver)
                        continue
                    scheduled = now + (delivery_time - now)
                    bucket = [receiver]
                    bucket_time = delivery_time
                    event = _FanoutDelivery(scheduled, self, sender, payload, now, bucket)
                    heappush(heap, (scheduled, 0, seq, event))
                    seq += 1
            else:
                # Tight loop for the dominant case: healthy network, constant
                # latency — one attribute-free pass per receiver.
                for receiver in batch:
                    arrival_start = downlink_get(receiver, 0.0)
                    if arrival_start < propagated:
                        arrival_start = propagated
                    delivery_time = arrival_start + transfer
                    downlink[receiver] = delivery_time
                    scheduled = now + (delivery_time - now)
                    event = _Delivery(scheduled, self, sender, receiver, payload, now)
                    heappush(heap, (scheduled, 0, seq, event))
                    seq += 1
            dispatched = count
        else:
            rng = self._rng
            sample = self.latency_model.sample
            sender_partitioned = bool(partitioned) and sender in partitioned
            check_partition = bool(partitioned)
            for receiver in batch:
                if (
                    check_partition and (sender_partitioned or receiver in partitioned)
                ) or (splits and self.crosses_split(sender, receiver)):
                    counters["net.messages_partitioned"] += 1.0
                    continue
                if loss > 0.0 and rng.random() < loss:
                    counters["net.messages_lost"] += 1.0
                    continue
                propagation = (
                    constant_latency
                    if constant_latency is not None
                    else sample(rng, sender, receiver)
                )
                arrival_start = now + propagation
                free_at = downlink_get(receiver, 0.0)
                if free_at > arrival_start:
                    arrival_start = free_at
                delivery_time = arrival_start + transfer
                downlink[receiver] = delivery_time
                scheduled = now + (delivery_time - now)
                event = _Delivery(scheduled, self, sender, receiver, payload, now)
                heappush(heap, (scheduled, 0, seq, event))
                seq += 1
                dispatched += 1
        # seq advanced once per pushed event (coalesced buckets push fewer
        # events than messages), so the live count follows the seq delta.
        queue._live += seq - queue._seq
        queue._seq = seq
        return dispatched

    def send_one(
        self,
        sender: str,
        receiver: str,
        payload: Any,
        size_bytes: int = 256,
    ) -> bool:
        """Fire-and-forget single send on the burst fast path.

        Identical semantics (accounting, routing arithmetic, event structure)
        to :meth:`send`, but skips building the :class:`Message` handle; use it
        on hot paths that ignore :meth:`send`'s return value (heartbeats).
        """
        counters = self._counters
        counters["net.messages_sent"] += 1.0
        counters["net.bytes_sent"] += float(size_bytes)
        if self._send_hooks is not None:
            return self._schedule_intercepted(sender, receiver, payload, size_bytes) > 0
        partitioned = self._partitioned
        if partitioned and (sender in partitioned or receiver in partitioned):
            counters["net.messages_partitioned"] += 1.0
            return False
        if self._splits and self.crosses_split(sender, receiver):
            counters["net.messages_partitioned"] += 1.0
            return False
        config = self.config
        loss = config.loss_probability
        rng = self._rng
        if loss > 0.0 and rng.random() < loss:
            counters["net.messages_lost"] += 1.0
            return False
        sim = self.sim
        now = sim._now
        latency_model = self.latency_model
        constant_latency = latency_model.constant_latency
        propagation = (
            constant_latency
            if constant_latency is not None
            else latency_model.sample(rng, sender, receiver)
        )
        arrival_start = now + propagation
        free_at = self._downlink_free_at.get(receiver, 0.0)
        if free_at > arrival_start:
            arrival_start = free_at
        delivery_time = arrival_start + (size_bytes + config.headers_bytes) / config.bandwidth_bytes_per_s
        self._downlink_free_at[receiver] = delivery_time
        scheduled = now + (delivery_time - now)
        queue = sim.queue
        seq = queue._seq
        event = _Delivery(scheduled, self, sender, receiver, payload, now)
        heappush(queue._heap, (scheduled, 0, seq, event))
        queue._seq = seq + 1
        queue._live += 1
        return True

    # ----------------------------------------------------------------- internals

    def _schedule_intercepted(
        self, sender: str, receiver: str, payload: Any, size_bytes: int
    ) -> int:
        """Route one message through the installed ``on_send`` pipeline.

        Mirrors the partition/loss accounting and float arithmetic of the
        fast paths exactly, then applies the context's verdict: drop the
        message, add propagation delay, deliver extra copies (each copy
        passes through the receiver's downlink serialization, so duplication
        storms consume real bandwidth), or corrupt the payload (delivered
        wrapped in :class:`CorruptedPayload` for the receiver to detect and
        discard).  A chain that leaves the verdict untouched yields the
        no-perturbation defaults (``extra_delay 0.0``, one copy), keeping
        observation-only middleware byte-identical to no middleware.
        Returns 1 when at least one copy was scheduled, 0 when the message
        was dropped.
        """
        counters = self._counters
        partitioned = self._partitioned
        if partitioned and (sender in partitioned or receiver in partitioned):
            counters["net.messages_partitioned"] += 1.0
            return 0
        if self._splits and self.crosses_split(sender, receiver):
            counters["net.messages_partitioned"] += 1.0
            return 0
        config = self.config
        rng = self._rng
        loss = config.loss_probability
        if loss > 0.0 and rng.random() < loss:
            counters["net.messages_lost"] += 1.0
            return 0
        sim = self.sim
        now = sim._now
        ctx = MiddlewareContext(
            "on_send",
            now=now,
            scenario=self._send_scenario,
            channel="net",
            sender=sender,
            receiver=receiver,
            payload=payload,
            size_bytes=size_bytes,
        )
        for hook in self._send_hooks:
            hook(ctx)
            if ctx.stop:
                break
        if ctx.drop:
            counters["net.messages_lost"] += 1.0
            return 0
        payload = ctx.payload
        extra_delay = ctx.extra_delay
        copies = ctx.copies
        if ctx.corrupted:
            payload = CorruptedPayload(payload)
        latency_model = self.latency_model
        constant_latency = latency_model.constant_latency
        propagation = (
            constant_latency
            if constant_latency is not None
            else latency_model.sample(rng, sender, receiver)
        ) + extra_delay
        transfer = (size_bytes + config.headers_bytes) / config.bandwidth_bytes_per_s
        downlink = self._downlink_free_at
        queue = sim.queue
        heap = queue._heap
        seq = queue._seq
        for _ in range(copies):
            arrival_start = now + propagation
            free_at = downlink.get(receiver, 0.0)
            if free_at > arrival_start:
                arrival_start = free_at
            delivery_time = arrival_start + transfer
            downlink[receiver] = delivery_time
            scheduled = now + (delivery_time - now)
            event = _Delivery(scheduled, self, sender, receiver, payload, now)
            heappush(heap, (scheduled, 0, seq, event))
            seq += 1
        queue._live += seq - queue._seq
        queue._seq = seq
        return 1

    def _dispatch(self, message: Message) -> Optional[Message]:
        metrics = self.sim.metrics
        metrics.increment("net.messages_sent")
        metrics.increment("net.bytes_sent", message.size_bytes)
        return self._route(message)

    def _route(self, message: Message) -> Optional[Message]:
        """Drop-check, sample latency and schedule delivery for one message."""
        if self._send_hooks is not None:
            dispatched = self._schedule_intercepted(
                message.sender, message.receiver, message.payload, message.size_bytes
            )
            return message if dispatched else None
        if self._partitioned and (
            message.sender in self._partitioned or message.receiver in self._partitioned
        ):
            self.sim.metrics.increment("net.messages_partitioned")
            return None
        if self._splits and self.crosses_split(message.sender, message.receiver):
            self.sim.metrics.increment("net.messages_partitioned")
            return None
        if self.config.loss_probability > 0.0 and (
            self._rng.random() < self.config.loss_probability
        ):
            self.sim.metrics.increment("net.messages_lost")
            return None

        propagation = self.latency_model.sample(
            self._rng, message.sender, message.receiver
        )
        total_bytes = message.size_bytes + self.config.headers_bytes
        transfer = total_bytes / self.config.bandwidth_bytes_per_s

        # Model receiver downlink serialization: a large transfer occupies the
        # downlink and delays subsequently arriving messages.
        now = self.sim.now
        arrival_start = max(
            now + propagation,
            self._downlink_free_at.get(message.receiver, 0.0),
        )
        delivery_time = arrival_start + transfer
        self._downlink_free_at[message.receiver] = delivery_time

        self.sim.schedule(
            delivery_time - now, partial(self._deliver, message), tag="net.deliver"
        )
        return message

    def _deliver(self, message: Message) -> None:
        actor = self._actors.get(message.receiver)
        if actor is None or not actor.alive:
            self.sim.metrics.increment("net.messages_undeliverable")
            return
        if message.receiver in self._partitioned:
            self.sim.metrics.increment("net.messages_partitioned")
            return
        if self._splits and self.crosses_split(message.sender, message.receiver):
            self.sim.metrics.increment("net.messages_partitioned")
            return
        self.sim.metrics.increment("net.messages_delivered")
        self.sim.metrics.observe("net.delivery_latency", self.sim.now - message.sent_at)
        actor.on_message(message.payload, message.sender)


__all__ = ["Network", "NetworkConfig"]
