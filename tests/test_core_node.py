"""Unit tests for AtumNode internals: routing, gossip targets, forward policies."""

import pytest

from repro.core import AtumCluster, AtumParameters, SmrKind
from repro.core.node import BroadcastMessage, DirectMessage, SmrEnvelope, _stable_hash


def small_params(**overrides):
    base = dict(hc=3, rwl=5, gmax=6, gmin=3, smr_kind=SmrKind.SYNC, round_duration=0.5,
                expected_system_size=30)
    base.update(overrides)
    return AtumParameters(**base)


def built_cluster(n=24, seed=0, **cluster_kwargs):
    cluster = AtumCluster(small_params(), seed=seed, **cluster_kwargs)
    cluster.build_static([f"n{i}" for i in range(n)])
    return cluster


class TestStableHash:
    def test_deterministic(self):
        assert _stable_hash("abc") == _stable_hash("abc")

    def test_differs_for_different_inputs(self):
        assert _stable_hash("abc") != _stable_hash("abd")


class TestRouting:
    def test_smr_envelope_for_wrong_group_is_ignored(self):
        cluster = built_cluster()
        node = cluster.node("n0")
        decided_before = len(node.replica.decided_log)
        node.on_message(SmrEnvelope(group_id="not-my-group", payload="junk"), "n1")
        assert len(node.replica.decided_log) == decided_before

    def test_direct_message_dispatched_to_registered_handler(self):
        cluster = built_cluster()
        received = []
        cluster.node("n1").register_direct_handler("ping", lambda payload, sender: received.append((payload, sender)))
        cluster.node("n0").send_direct("n1", "ping", {"x": 1})
        cluster.run(until=5.0)
        assert received == [({"x": 1}, "n0")]

    def test_direct_message_without_handler_is_dropped(self):
        cluster = built_cluster()
        cluster.node("n0").send_direct("n1", "unknown-kind", "payload")
        cluster.run(until=5.0)  # must not raise

    def test_mute_node_ignores_everything(self):
        cluster = built_cluster()
        received = []
        cluster.node("n2").register_direct_handler("ping", lambda p, s: received.append(p))
        cluster.node("n2").byzantine = "mute"
        cluster.node("n0").send_direct("n2", "ping", "x")
        cluster.run(until=5.0)
        assert received == []

    def test_silent_node_does_not_deliver_broadcasts(self):
        cluster = built_cluster(seed=2)
        cluster.node("n5").byzantine = "silent"
        bcast = cluster.broadcast("n0", "msg")
        cluster.run(until=60.0)
        assert not cluster.node("n5").has_delivered(bcast)


class TestGossipTargets:
    def test_flood_targets_are_unique_neighbor_groups(self):
        cluster = built_cluster()
        node = cluster.node("n0")
        message = BroadcastMessage("b1", "n0", "x", 10, 0.0)
        targets = node._gossip_targets(message, exclude="")
        own = node.group_id()
        assert own not in targets
        assert len(targets) == len(set(targets))
        neighbor_ids = {g for pair in cluster.cycle_neighbor_ids(own) for g in pair}
        assert set(targets) <= neighbor_ids

    def test_single_policy_selects_fewer_targets_than_flood(self):
        cluster = built_cluster(n=40)
        node = cluster.node("n0")
        message = BroadcastMessage("b2", "n0", "x", 10, 0.0)
        node.forward_policy = "flood"
        flood = node._gossip_targets(message, exclude="")
        node.forward_policy = "single"
        single = node._gossip_targets(message, exclude="")
        assert len(single) <= len(flood)
        assert len(single) >= 1

    def test_targets_deterministic_across_members_of_a_group(self):
        cluster = built_cluster(n=40)
        node_a = cluster.node("n0")
        group = node_a.group_id()
        peers = [cluster.node(m) for m in cluster.view_of_group(group).members]
        message = BroadcastMessage("b3", "n0", "x", 10, 0.0)
        for policy in ("flood", "single", "double", "random"):
            target_sets = []
            for peer in peers:
                peer.forward_policy = policy
                target_sets.append(tuple(peer._gossip_targets(message, exclude="")))
            assert len(set(target_sets)) == 1

    def test_custom_forward_fn_filters_targets(self):
        cluster = built_cluster(n=40)
        node = cluster.node("n0")
        message = BroadcastMessage("b4", "n0", "x", 10, 0.0)
        node.forward_fn = lambda m, gid: False
        assert node._gossip_targets(message, exclude="") == []

    def test_unknown_policy_raises(self):
        cluster = built_cluster()
        node = cluster.node("n0")
        node.forward_policy = "bogus"
        with pytest.raises(ValueError):
            node._gossip_targets(BroadcastMessage("b5", "n0", "x", 10, 0.0), exclude="")

    def test_exclude_source_group(self):
        cluster = built_cluster(n=40)
        node = cluster.node("n0")
        message = BroadcastMessage("b6", "n0", "x", 10, 0.0)
        all_targets = node._gossip_targets(message, exclude="")
        if all_targets:
            excluded = all_targets[0]
            remaining = node._gossip_targets(message, exclude=excluded)
            assert excluded not in remaining


class TestMembershipLifecycle:
    def test_clear_membership_stops_replica(self):
        cluster = built_cluster()
        node = cluster.node("n0")
        assert node.replica is not None
        node.clear_membership()
        assert node.replica is None
        assert not node.is_member

    def test_install_view_reconfigures_existing_replica(self):
        cluster = built_cluster()
        node = cluster.node("n0")
        view = node.vgroup_view
        new_view = view.add("phantom-member")
        node.install_view(new_view)
        assert "phantom-member" in node.replica.members

    def test_broadcast_counter_metric(self):
        cluster = built_cluster()
        cluster.broadcast("n0", "a")
        cluster.broadcast("n1", "b")
        assert cluster.sim.metrics.counter("atum.broadcasts_started") == 2

    def test_delivered_order_tracks_delivery_sequence(self):
        cluster = built_cluster(seed=5)
        first = cluster.broadcast("n0", "first")
        cluster.run(until=30.0)
        second = cluster.broadcast("n1", "second")
        cluster.run(until=60.0)
        order = cluster.node("n3").delivered_order
        assert order.index(first) < order.index(second)


class TestAsyncNodeBehaviour:
    def test_async_forwards_without_round_alignment(self):
        params = small_params(smr_kind=SmrKind.ASYNC)
        cluster = AtumCluster(params, seed=3)
        cluster.build_static([f"n{i}" for i in range(24)])
        start = cluster.sim.now
        bcast = cluster.broadcast("n0", "fast")
        cluster.run(until=60.0)
        latencies = cluster.delivery_latencies(bcast, start)
        assert cluster.delivery_fraction(bcast) == 1.0
        # No synchronous rounds: the whole dissemination completes well below
        # a single Sync round budget.
        assert max(latencies) < 5.0
