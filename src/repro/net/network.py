"""The simulated network connecting actors.

The network models the aspects of the paper's deployment that matter for
protocol behaviour:

* per-message propagation latency (:mod:`repro.net.latency`);
* transfer time proportional to message size and constrained by per-node
  download bandwidth (this is what makes the incast / "throughput collapse"
  effect of the paper's section 5.1 observable);
* optional message loss and network partitions;
* delivery only to registered, alive actors (a crashed or departed node
  silently drops traffic, like a closed socket).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Any, Dict, Iterable, Optional, Set

from repro.net.latency import LatencyModel, LanProfile
from repro.net.message import Message
from repro.sim.actor import Actor
from repro.sim.simulator import Simulator


@dataclass
class NetworkConfig:
    """Tunable parameters of the simulated network.

    Attributes:
        bandwidth_bytes_per_s: Per-node download bandwidth.  EC2 micro
            instances (the paper's node type) provide on the order of
            8 MB/s of sustained throughput.
        loss_probability: Probability that an individual message is dropped.
        headers_bytes: Fixed per-message overhead added to every payload.
        randomized_send_order: When a burst of messages is submitted with
            :meth:`Network.send_burst`, shuffle the order to avoid incast
            (paper section 5.1, "Randomized message sending").
    """

    bandwidth_bytes_per_s: float = 8_000_000.0
    loss_probability: float = 0.0
    headers_bytes: int = 64
    randomized_send_order: bool = True


class Network:
    """Delivers messages between registered actors over a latency model."""

    def __init__(
        self,
        sim: Simulator,
        latency_model: Optional[LatencyModel] = None,
        config: Optional[NetworkConfig] = None,
    ) -> None:
        self.sim = sim
        self.latency_model = latency_model or LanProfile()
        self.config = config or NetworkConfig()
        self._actors: Dict[str, Actor] = {}
        self._partitioned: Set[str] = set()
        self._rng = sim.rng.stream("network")
        # Tracks when each receiving node's downlink frees up, used to model
        # queueing of large transfers at the receiver.
        self._downlink_free_at: Dict[str, float] = {}

    # --------------------------------------------------------------- membership

    def register(self, actor: Actor) -> None:
        """Attach an actor to the network so it can receive messages."""
        self._actors[actor.address] = actor

    def unregister(self, address: str) -> None:
        """Detach an actor; future messages to it are dropped."""
        self._actors.pop(address, None)
        self._downlink_free_at.pop(address, None)

    def actor(self, address: str) -> Optional[Actor]:
        return self._actors.get(address)

    def addresses(self) -> Iterable[str]:
        return self._actors.keys()

    def __contains__(self, address: str) -> bool:
        return address in self._actors

    # --------------------------------------------------------------- partitions

    def partition(self, addresses: Iterable[str]) -> None:
        """Isolate the given addresses: they can neither send nor receive."""
        self._partitioned.update(addresses)

    def heal(self, addresses: Optional[Iterable[str]] = None) -> None:
        """Heal a partition for the given addresses (or all, if omitted)."""
        if addresses is None:
            self._partitioned.clear()
        else:
            self._partitioned.difference_update(addresses)

    def is_partitioned(self, address: str) -> bool:
        return address in self._partitioned

    # ------------------------------------------------------------------ sending

    def send(
        self,
        sender: str,
        receiver: str,
        payload: Any,
        size_bytes: int = 256,
    ) -> Optional[Message]:
        """Send one message.  Returns the in-flight message, or ``None`` if dropped."""
        message = Message(
            sender=sender,
            receiver=receiver,
            payload=payload,
            size_bytes=size_bytes,
            sent_at=self.sim.now,
        )
        return self._dispatch(message)

    def send_burst(
        self,
        sender: str,
        messages: Iterable[tuple[str, Any, int]],
    ) -> int:
        """Send a burst of ``(receiver, payload, size_bytes)`` messages.

        If :attr:`NetworkConfig.randomized_send_order` is enabled the burst is
        shuffled before submission, which spreads load over receivers' downlinks
        and mirrors Atum's randomized message sending.
        Returns the number of messages actually dispatched (not dropped).

        Bursts are the dominant send pattern (every group message is a burst of
        shares), so accounting is batched: one counter update for the whole
        burst, then the per-message routing fast path.  The per-message RNG
        draw order and scheduling order are identical to sequential
        :meth:`send` calls, so simulations are trace-identical either way.
        """
        batch = list(messages)
        if self.config.randomized_send_order:
            self._rng.shuffle(batch)
        if not batch:
            return 0
        metrics = self.sim.metrics
        metrics.increment("net.messages_sent", len(batch))
        metrics.increment(
            "net.bytes_sent", sum(size_bytes for _, _, size_bytes in batch)
        )
        now = self.sim.now
        route = self._route
        dispatched = 0
        for receiver, payload, size_bytes in batch:
            message = Message(
                sender=sender,
                receiver=receiver,
                payload=payload,
                size_bytes=size_bytes,
                sent_at=now,
            )
            if route(message) is not None:
                dispatched += 1
        return dispatched

    # ----------------------------------------------------------------- internals

    def _dispatch(self, message: Message) -> Optional[Message]:
        metrics = self.sim.metrics
        metrics.increment("net.messages_sent")
        metrics.increment("net.bytes_sent", message.size_bytes)
        return self._route(message)

    def _route(self, message: Message) -> Optional[Message]:
        """Drop-check, sample latency and schedule delivery for one message."""
        if self._partitioned and (
            message.sender in self._partitioned or message.receiver in self._partitioned
        ):
            self.sim.metrics.increment("net.messages_partitioned")
            return None
        if self.config.loss_probability > 0.0 and (
            self._rng.random() < self.config.loss_probability
        ):
            self.sim.metrics.increment("net.messages_lost")
            return None

        propagation = self.latency_model.sample(
            self._rng, message.sender, message.receiver
        )
        total_bytes = message.size_bytes + self.config.headers_bytes
        transfer = total_bytes / self.config.bandwidth_bytes_per_s

        # Model receiver downlink serialization: a large transfer occupies the
        # downlink and delays subsequently arriving messages.
        now = self.sim.now
        arrival_start = max(
            now + propagation,
            self._downlink_free_at.get(message.receiver, 0.0),
        )
        delivery_time = arrival_start + transfer
        self._downlink_free_at[message.receiver] = delivery_time

        self.sim.schedule(
            delivery_time - now, partial(self._deliver, message), tag="net.deliver"
        )
        return message

    def _deliver(self, message: Message) -> None:
        actor = self._actors.get(message.receiver)
        if actor is None or not actor.alive:
            self.sim.metrics.increment("net.messages_undeliverable")
            return
        if message.receiver in self._partitioned:
            self.sim.metrics.increment("net.messages_partitioned")
            return
        self.sim.metrics.increment("net.messages_delivered")
        self.sim.metrics.observe("net.delivery_latency", self.sim.now - message.sent_at)
        actor.on_message(message.payload, message.sender)


__all__ = ["Network", "NetworkConfig"]
