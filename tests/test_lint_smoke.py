"""Whole-repo atumlint smoke: src/repro must be clean under the ratchet."""

from lint_utils import REPO_ROOT, SRC
from repro.lint import run_lint
from repro.lint.baseline import (
    BASELINE_FILENAME,
    diff_against_baseline,
    load_baseline,
)
from repro.lint.__main__ import main


def test_src_repro_has_zero_unbaselined_findings():
    findings = run_lint([SRC], root=REPO_ROOT)
    entries = load_baseline(REPO_ROOT / BASELINE_FILENAME)
    diff = diff_against_baseline(findings, entries)
    assert diff.unbaselined == [], "\n".join(str(f) for f in diff.unbaselined)
    assert diff.stale == [], "baseline entries for findings that no longer exist"


def test_baseline_debt_stays_small_and_reasoned():
    entries = load_baseline(REPO_ROOT / BASELINE_FILENAME)
    assert len(entries) <= 5
    assert all(e.reason and not e.reason.startswith("TODO") for e in entries)


def test_cli_check_mode_passes_end_to_end(capsys):
    # The exact CI invocation: default targets, strict mode (baseline ratchet
    # in both directions, metrics registry and METRICS.md staleness).
    assert main(["--root", str(REPO_ROOT), "--check", "--quiet"]) == 0
    assert "atumlint: OK" in capsys.readouterr().out
