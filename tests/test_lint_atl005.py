"""ATL005: attribute writes undeclared in (inherited) __slots__."""

from lint_utils import lint_fixture, rules_of


def test_flags_undeclared_write_and_resolves_inherited_slots():
    findings = lint_fixture("atl005_bad.py", rules=["ATL005"])
    assert rules_of(findings) == ["ATL005"]
    message = findings[0].message
    assert "Leaf.gamma" in message
    # Inherited slot resolution: alpha comes from Base, beta from Leaf, and
    # writing either is NOT flagged — only gamma is.
    assert "alpha" in message and "beta" in message


def test_dict_slot_opens_layout_and_pragma_waives():
    assert lint_fixture("atl005_ok.py") == []
