"""Reproducible, named random streams.

Every stochastic component of the simulation (network latency, gossip fan-out
choices, random walks, workload drivers, Byzantine strategies, ...) draws from
its own named stream derived from a single master seed.  This keeps runs
reproducible while decoupling the randomness consumed by unrelated components:
adding an extra latency sample does not perturb, say, the H-graph structure.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``master_seed`` and a stream ``name``."""
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def named_stream(name: str, master_seed: int = 0) -> random.Random:
    """A standalone named stream: ``random.Random(derive_seed(master_seed, name))``.

    The one-off counterpart of :meth:`RngRegistry.stream` for components
    that need a single deterministic stream without carrying a registry —
    default-RNG fallbacks, per-broadcast group-consistent draws, scenario
    fault selection.  atumlint rule ATL001 forbids constructing
    ``random.Random`` anywhere else, so every draw in the system is
    attributable to a ``(master_seed, name)`` pair.
    """
    return random.Random(derive_seed(master_seed, name))


class RngRegistry:
    """A registry of named :class:`random.Random` streams.

    Streams are created lazily on first access and are stable across runs for
    a given ``(master_seed, name)`` pair.
    """

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream registered under ``name``, creating it if needed."""
        if name not in self._streams:
            self._streams[name] = random.Random(derive_seed(self.master_seed, name))
        return self._streams[name]

    def fork(self, name: str) -> "RngRegistry":
        """Return a new registry whose master seed is derived from ``name``.

        Useful to give a sub-component (e.g. one Atum node) its own family of
        streams without colliding with the parent's stream names.
        """
        return RngRegistry(derive_seed(self.master_seed, name))


__all__ = ["RngRegistry", "derive_seed", "named_stream"]
