"""PBFT checkpointing and state transfer: liveness-restoring catch-up.

Before this module, a PBFT replica that missed decisions (isolated by a
partition, on the losing side of a split) was *safe but never live* again
unless fresh traffic forced a view change: its decided log stalled at the
gap forever.  Classic PBFT solves this with periodic checkpoints and state
transfer, and that is what :class:`CheckpointManager` adds to
:class:`~repro.smr.pbft.PbftReplica`:

* every ``checkpoint_interval`` executed operations a replica signs and
  broadcasts a :class:`Checkpoint` over the digest of its decided log;
* ``2f + 1`` matching checkpoints form a :class:`CheckpointCertificate`
  (the *stable checkpoint*), at which point the protocol message log below
  it is garbage-collected (executed slots feed no future view change vote:
  laggards catch up through state transfer instead);
* a replica that learns of a certified checkpoint ahead of its own decided
  log — through checkpoint votes, a periodic :class:`CheckpointAnnounce`,
  the certificate carried by view-change/new-view messages, or an
  anti-entropy hint (:mod:`repro.group.antientropy`) — fetches the missing
  operations plus the certificate from a co-replica
  (:class:`StateTransferRequest` / :class:`StateTransferResponse`),
  verifies the transferred prefix against the certified state digest, and
  installs it.  Installation replays ``decide_fn`` so the host node's
  delivered-broadcast state (the snapshot the paper's state transfer
  ships) is restored too.

Safety of installation never rests on the responder: a certificate needs
``2f + 1`` distinct member signatures over ``(epoch, seq, state digest)``,
and the response is accepted only if the digest of (own log + transferred
operations) equals the certified digest — a forged certificate, a
tampered operation body, a stale low-water-mark or a response that no
longer lines up with the local log is rejected and counted
(``smr.checkpoint.rejected``), never installed.

Everything here is driven by existing protocol events plus one periodic
announce timer per replica; the timer is only created when
``SmrConfig.checkpoint_interval > 0``, so runs with checkpointing
disabled (the default) are byte-identical to pre-checkpoint builds.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace
from typing import TYPE_CHECKING, Dict, Optional, Sequence, Tuple

from repro.crypto.digest import digest_object
from repro.crypto.keys import Signature
from repro.net.requests import (
    RequestEnvelope,
    RequestManager,
    RequestPolicy,
    ResponseEnvelope,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.smr.base import Operation
    from repro.smr.pbft import PbftReplica


# --------------------------------------------------------------------- frames


@dataclass(frozen=True)
class Checkpoint:
    """One replica's signed claim "my first ``seq`` decided ops digest to X".

    ``seq`` counts *decided operations* (the length of the decided log),
    not per-view sequence numbers: view changes and epoch-local sequence
    resets never renumber the decided log, so certificates stay comparable
    across views.
    """

    epoch: int
    seq: int
    state_digest: str
    replica: str
    signature: Signature


@dataclass(frozen=True)
class CheckpointCertificate:
    """``2f + 1`` matching checkpoint signatures: a *stable* checkpoint."""

    epoch: int
    seq: int
    state_digest: str
    signatures: Tuple[Signature, ...]

    @property
    def signers(self) -> Tuple[str, ...]:
        return tuple(signature.signer for signature in self.signatures)


@dataclass(frozen=True)
class CheckpointAnnounce:
    """Periodic re-broadcast of the stable checkpoint (plus the log length).

    This is the liveness path for a healed replica when no new requests
    flow: checkpoint votes were broadcast while it was cut off, so only a
    periodic announce lets it discover the gap at all.  ``log_length``
    additionally covers the *uncertified tail* — operations decided since
    the last checkpoint (or before the first one forms).  A replica whose
    log stays frozen below an announced length for a full grace period
    starts a view change, whose carried prepared slots re-serve exactly
    that tail; the claim itself is unverified, but a view change is always
    safe and a single Byzantine replica can force one anyway by sending a
    view-change vote, so this adds no new attack surface.
    """

    epoch: int
    certificate: Optional[CheckpointCertificate]
    log_length: int = 0
    # The announcer's current PBFT view.  A healed replica may be several
    # views behind its co-replicas (view changes happened while it was cut
    # off); its recovery view change must propose a view *above* theirs or
    # they ignore the vote (``new_view <= self.view``) and the tail stalls
    # forever.  The announce is the only traffic guaranteed to flow to a
    # quiet straggler, so it carries the view.
    view: int = 0
    # Empty for an own-epoch certificate; the re-anchoring transition
    # chain when the certificate was carried across reconfigurations
    # (see EpochTransition below).
    transitions: Tuple["EpochTransition", ...] = ()


@dataclass(frozen=True)
class EpochTransition:
    """A quorum-signed re-anchoring of a certificate into a new epoch.

    Certificates are signed over their epoch, and a reconfiguration may
    replace the very members that signed them — so on entering epoch
    ``new_epoch``, ``2f + 1`` of the *new* membership countersign the best
    certificate carried out of the outgoing epoch.  A contiguous chain of
    these records (one per epoch crossed, no gaps) is what lets a replica
    isolated across several reconfigurations verify an old-epoch
    certificate all the way back to the epoch that minted it: each link's
    ``prev_members`` attests the membership that must have signed the link
    below, and the top link is checked against the verifier's own current
    membership.
    """

    new_epoch: int
    members: Tuple[str, ...]        # new membership (sorted) that signed
    prev_members: Tuple[str, ...]   # outgoing membership (sorted)
    certificate: CheckpointCertificate  # the certificate being re-anchored
    signatures: Tuple[Signature, ...]

    @property
    def signers(self) -> Tuple[str, ...]:
        return tuple(signature.signer for signature in self.signatures)


@dataclass(frozen=True)
class EpochTransitionVote:
    """One new-epoch member's signature toward an :class:`EpochTransition`."""

    new_epoch: int
    members: Tuple[str, ...]
    prev_members: Tuple[str, ...]
    certificate: CheckpointCertificate
    replica: str
    signature: Signature


@dataclass(frozen=True)
class StateTransferRequest:
    """"I have ``have_count`` decided operations; serve me your checkpoint"."""

    epoch: int
    have_count: int
    replica: str


@dataclass(frozen=True)
class StateTransferResponse:
    """The certified prefix ``[base_count, certificate.seq)`` of the log.

    ``transitions`` is empty when the certificate belongs to the current
    epoch; for a cross-epoch certificate it carries the contiguous
    transition chain that re-anchors it into the receiver's epoch.
    """

    epoch: int
    certificate: CheckpointCertificate
    base_count: int
    operations: Tuple["Operation", ...]
    transitions: Tuple[EpochTransition, ...] = ()


def checkpoint_statement(epoch: int, seq: int, state_digest: str) -> Tuple:
    """The statement a checkpoint signature covers."""
    return ("pbft-checkpoint", epoch, seq, state_digest)


def transition_statement(
    new_epoch: int,
    members: Sequence[str],
    prev_members: Sequence[str],
    certificate: CheckpointCertificate,
) -> Tuple:
    """The statement an epoch-transition signature covers."""
    return (
        "pbft-epoch-transition",
        new_epoch,
        tuple(members),
        tuple(prev_members),
        certificate.epoch,
        certificate.seq,
        certificate.state_digest,
    )


def _quorum_of(members: Sequence[str]) -> int:
    """2f+1 for an arbitrary membership tuple (1 for singletons)."""
    count = len(members)
    if count <= 1:
        return 1
    return 2 * ((count - 1) // 3) + 1


def state_digest_of(operations: Sequence["Operation"], interval: int) -> str:
    """Chained digest of a decided-log prefix (operation *contents*).

    Digesting full operations — not just op ids — is what lets a state
    transfer receiver detect tampered operation bodies: a response whose
    operations do not reproduce the certified digest is rejected whole.

    The digest chains in ``interval``-sized chunks
    (``d_i = H(d_{i-1}, chunk_i)``) rather than hashing the whole prefix
    flat: emitters fold only the newest chunk onto a cached chain value
    (O(interval) per checkpoint instead of O(log) — see
    :meth:`CheckpointManager._state_digest_at`), while any verifier with
    the full prefix can recompute the chain from genesis.  Chunk
    boundaries are deterministic because every certificate seq is a
    multiple of the group-wide configured interval.
    """
    digest = ""
    for start in range(0, len(operations), interval):
        digest = digest_object(
            ("pbft-ckpt-chain", digest, tuple(operations[start : start + interval]))
        )
    return digest


# -------------------------------------------------------------------- manager


class CheckpointManager:
    """Checkpoint/state-transfer state of one :class:`PbftReplica`.

    The replica owns the manager (``replica.checkpoints``), feeds it every
    newly committed operation (:meth:`on_committed`), routes the four
    checkpoint frame types to it, and consults :attr:`transfer_blocking`
    before executing slots — while a certified checkpoint ahead of the
    local log is known and not yet installed, executing new-view
    re-proposals would append operations *after* the missing prefix and
    diverge, so execution pauses until the transfer installs.
    """

    def __init__(self, replica: "PbftReplica") -> None:
        self.replica = replica
        self.interval = replica.config.checkpoint_interval
        self.stable: Optional[CheckpointCertificate] = None
        # (seq, digest) -> signer -> verified signature.
        self._votes: Dict[Tuple[int, str], Dict[str, Signature]] = {}
        # Decided-log position per op id, for slot GC below the stable
        # checkpoint (kept in lockstep with replica.decided_log).
        self._positions: Dict[str, int] = {}
        # Outstanding state transfer: the certificate we must install up to.
        self._transfer_target: Optional[CheckpointCertificate] = None
        # Whether the install should be followed by a view change to
        # realign the view-local execution cursor.  True for transfers
        # triggered outside a view change (announce, anti-entropy hint);
        # False when a new view triggered the transfer — that view's own
        # re-proposals already run under a fresh, gap-free numbering.
        self._realign_after_install = True
        self._announce_armed = False
        # The stable certificate this one replaced: kept only so a
        # `stale_cert` adversary has something genuinely old to serve.
        self.previous_stable: Optional[CheckpointCertificate] = None
        # Epoch-crossing anchor: the best certificate carried out of an
        # earlier epoch, plus the contiguous transition chain (oldest
        # first, one record per epoch crossed) that re-anchors it into the
        # current epoch.  Superseded as soon as an own-epoch certificate
        # forms.
        self.anchor: Optional[CheckpointCertificate] = None
        self.transitions: list = []
        # Transition votes for the current epoch: statement digest ->
        # signer -> vote; plus the statements we already signed (own
        # proposal or f+1-backed countersign), so each replica signs a
        # statement at most once per epoch.
        self._transition_votes: Dict[str, Dict[str, EpochTransitionVote]] = {}
        self._transition_signed: set = set()
        # Retries, rotation, backoff and the responder scoreboard live in
        # the unified request layer; built only when checkpointing is on,
        # so disabled runs stay byte-identical.
        self._requests: Optional[RequestManager] = None
        self._transfer_request_id: Optional[str] = None
        # Sim time the current catch-up gap opened (-1 = no open gap);
        # feeds the catch-up-latency-under-attack matrix rows.
        self._gap_since: float = -1.0
        if self.interval > 0:
            self._requests = RequestManager(
                replica.sim,
                replica.node_id,
                replica.send_fn,
                policy=RequestPolicy(
                    adaptive_quarantine=getattr(
                        replica.config, "adaptive_quarantine", False
                    ),
                ),
                stream_name=f"requests.ckpt.{replica.node_id}",
            )
        # Tail catch-up state: how long our log has been frozen below a
        # co-replica's announced (uncertified) log length.
        self._tail_seen_length = -1
        self._tail_deficit_since = -1.0
        self._last_tail_view_change = -1.0
        # Highest PBFT view any co-replica announced this epoch; recovery
        # view changes propose past it (see _note_peer_log_length).
        self.peer_view_seen = 0
        # Incremental chain-digest cache: the chained state digest over the
        # first _chain_count decided operations (a multiple of interval).
        # The decided log is append-only, so each emission folds only the
        # chunks decided since the last one.
        self._chain_count = 0
        self._chain_digest = ""
        if self.interval > 0:
            self._arm_announce_timer()

    # ----------------------------------------------------------------- queries

    @property
    def stable_seq(self) -> int:
        """Sequence (decided-op count) of the best certified checkpoint.

        Counts the cross-epoch anchor too: for gap detection and serving
        it is as good as an own-epoch stable checkpoint (its transition
        chain makes it verifiable in the current epoch).
        """
        best = self.best_certificate()
        return best.seq if best is not None else 0

    def best_certificate(self) -> Optional[CheckpointCertificate]:
        """The highest certified checkpoint known (own-epoch or anchored)."""
        stable, anchor = self.stable, self.anchor
        if stable is None:
            return anchor
        if anchor is None or stable.seq >= anchor.seq:
            return stable
        return anchor

    def _serving_chain(
        self,
    ) -> Tuple[Optional[CheckpointCertificate], Tuple["EpochTransition", ...]]:
        """The (certificate, transition chain) this replica can serve.

        An own-epoch stable checkpoint needs no chain.  The cross-epoch
        anchor is servable only while its chain is complete — one record
        per epoch from the anchor's epoch up to the current one, all
        re-anchoring exactly the anchor — because receivers reject
        anything less (``skipped_epoch``).
        """
        stable, anchor = self.stable, self.anchor
        if stable is not None and (anchor is None or stable.seq >= anchor.seq):
            return stable, ()
        if anchor is None:
            return None, ()
        chain = tuple(self.transitions)
        expected = list(range(anchor.epoch + 1, self.replica.epoch + 1))
        if [record.new_epoch for record in chain] != expected:
            return None, ()
        top = chain[-1].certificate if chain else None
        if top is None or (top.epoch, top.seq, top.state_digest) != (
            anchor.epoch,
            anchor.seq,
            anchor.state_digest,
        ):
            return None, ()
        return anchor, chain

    @property
    def transfer_blocking(self) -> bool:
        """Whether execution must pause until a state transfer installs.

        True while a *certified* checkpoint ahead of the local decided log
        is known: executing newer slots first would commit operations past
        the missing prefix and break prefix consistency.
        """
        target = self._transfer_target
        if target is None:
            return False
        if len(self.replica.decided_log) >= target.seq:
            self._transfer_target = None
            self._gap_closed()
            return False
        return True

    def _gap_closed(self) -> None:
        """The catch-up gap just closed: record how long recovery took."""
        if self._gap_since >= 0:
            self._metrics().observe(
                "smr.checkpoint.catchup_latency", self.replica.sim.now - self._gap_since
            )
            self._gap_since = -1.0

    def _metrics(self):
        return self.replica.sim.metrics

    def _reject(self, reason: str) -> None:
        metrics = self._metrics()
        metrics.increment("smr.checkpoint.rejected")
        metrics.increment(f"smr.checkpoint.rejected_{reason}")

    # ------------------------------------------------------------ vote pipeline

    def on_committed(self, operation: "Operation") -> None:
        """A newly decided operation was appended to the decided log."""
        log = self.replica.decided_log
        self._positions[operation.op_id] = len(log) - 1
        if self.interval > 0 and len(log) % self.interval == 0:
            self._emit_checkpoint(len(log))

    def _advance_chain(self, limit: int) -> None:
        """Fold full decided-log chunks up to ``limit`` into the cache."""
        log = self.replica.decided_log
        while self._chain_count + self.interval <= limit:
            next_count = self._chain_count + self.interval
            self._chain_digest = digest_object(
                (
                    "pbft-ckpt-chain",
                    self._chain_digest,
                    tuple(log[self._chain_count : next_count]),
                )
            )
            self._chain_count = next_count

    def _state_digest_at(self, seq: int) -> str:
        """Chained state digest over the first ``seq`` decided operations.

        Advances the incremental cache chunk by chunk, so each checkpoint
        emission costs O(interval) digest work regardless of log length;
        equals ``state_digest_of(decided_log[:seq], interval)``.
        """
        self._advance_chain(seq)
        if self._chain_count == seq:
            return self._chain_digest
        # Defensive: certificate seqs are always interval multiples, but a
        # stray partial tail still digests deterministically (uncached).
        log = self.replica.decided_log
        return digest_object(
            ("pbft-ckpt-chain", self._chain_digest, tuple(log[self._chain_count : seq]))
        )

    def _chained_digest_with(self, operations: Sequence["Operation"]) -> str:
        """Chain digest over (decided log + ``operations``), cache-assisted.

        Equals ``state_digest_of(log + operations, interval)`` but folds
        only the local log's uncached tail plus the transferred chunk —
        O(interval + len(operations)) per state-transfer verification
        instead of re-hashing the whole log from genesis.
        """
        log = self.replica.decided_log
        self._advance_chain(len(log))
        digest = self._chain_digest
        tail = list(log[self._chain_count :]) + list(operations)
        for start in range(0, len(tail), self.interval):
            digest = digest_object(
                ("pbft-ckpt-chain", digest, tuple(tail[start : start + self.interval]))
            )
        return digest

    def _emit_checkpoint(self, seq: int) -> None:
        replica = self.replica
        digest = self._state_digest_at(seq)
        statement = checkpoint_statement(replica.epoch, seq, digest)
        message = Checkpoint(
            epoch=replica.epoch,
            seq=seq,
            state_digest=digest,
            replica=replica.node_id,
            signature=replica.registry.sign(replica.node_id, statement),
        )
        self._metrics().increment("smr.checkpoint.emitted")
        replica._broadcast(message)
        self._record_vote(message)

    def on_checkpoint(self, message: Checkpoint, sender: str) -> None:
        replica = self.replica
        if message.epoch != replica.epoch:
            return
        if message.seq < 1:
            self._reject("bad_seq")
            return
        if message.replica != sender and sender != replica.node_id:
            self._reject("relayed_vote")
            return
        if message.replica not in replica.members:
            self._reject("non_member")
            return
        statement = checkpoint_statement(message.epoch, message.seq, message.state_digest)
        if (
            message.signature.signer != message.replica
            or not replica.registry.verify(message.signature, statement)
        ):
            self._reject("bad_signature")
            return
        self._record_vote(message)

    def _record_vote(self, message: Checkpoint) -> None:
        if self.stable is not None and message.seq <= self.stable.seq:
            return
        votes = self._votes.setdefault((message.seq, message.state_digest), {})
        votes[message.replica] = message.signature
        quorum = self.replica._quorum_2f1()
        if len(votes) >= quorum or len(self.replica.members) == 1:
            certificate = CheckpointCertificate(
                epoch=self.replica.epoch,
                seq=message.seq,
                state_digest=message.state_digest,
                signatures=tuple(votes[signer] for signer in sorted(votes)),
            )
            self._adopt_stable(certificate)

    # -------------------------------------------------------- epoch transitions

    def on_epoch_change(self, prev_members: Sequence[str]) -> None:
        """The replica just entered a new epoch (reconfiguration installed).

        Epoch-scoped state resets as before, but the best certificate of
        the outgoing epoch — own stable or inherited anchor, with its
        chain — survives as the new anchor, and a transition vote over it
        is broadcast so 2f+1 of the *new* membership re-anchor it into
        this epoch.  Without this, a quiet group after a reconfiguration
        has nothing certified to serve and an isolated replica could
        never catch up until fresh traffic minted a new checkpoint.
        """
        outgoing = self.best_certificate()
        carried = list(self.transitions) if self.anchor is not None else []
        if self.stable is not None and (
            self.anchor is None or self.stable.seq >= self.anchor.seq
        ):
            carried = []
        self.reset_for_epoch()
        if outgoing is None:
            return
        self.anchor = outgoing
        self.transitions = carried
        self._propose_transition(outgoing, tuple(sorted(prev_members)))

    def _propose_transition(
        self, certificate: CheckpointCertificate, prev_members: Tuple[str, ...]
    ) -> None:
        replica = self.replica
        members = tuple(sorted(replica.members))
        statement = transition_statement(
            replica.epoch, members, prev_members, certificate
        )
        key = digest_object(statement)
        self._transition_signed.add(key)
        vote = EpochTransitionVote(
            new_epoch=replica.epoch,
            members=members,
            prev_members=prev_members,
            certificate=certificate,
            replica=replica.node_id,
            signature=replica.registry.sign(replica.node_id, statement),
        )
        self._metrics().increment("smr.checkpoint.transition_votes")
        replica._broadcast(vote)
        self._record_transition_vote(vote, key)

    def on_transition_vote(self, message: EpochTransitionVote, sender: str) -> None:
        replica = self.replica
        if message.new_epoch != replica.epoch:
            return
        if message.replica != sender and sender != replica.node_id:
            self._reject("transition_relayed_vote")
            return
        if message.replica not in replica.members:
            self._reject("transition_non_member")
            return
        if tuple(message.members) != tuple(sorted(replica.members)):
            self._reject("transition_mismatch")
            return
        certificate = message.certificate
        if (
            not isinstance(certificate, CheckpointCertificate)
            or certificate.epoch >= replica.epoch
            or certificate.seq < 1
        ):
            self._reject("bad_transition")
            return
        statement = transition_statement(
            message.new_epoch, message.members, message.prev_members, certificate
        )
        if message.signature.signer != message.replica or not replica.registry.verify(
            message.signature, statement
        ):
            self._reject("transition_bad_signature")
            return
        # The embedded certificate must verify against the membership the
        # vote claims signed it, or votes could launder a forged
        # certificate into a quorum-signed transition.  A certificate
        # minted in the immediately-outgoing epoch raw-verifies against
        # ``prev_members``.  An OLDER certificate (a quiet group whose
        # anchor already crossed a boundary) was never signed by
        # ``prev_members`` — different replicas even hold copies with
        # different 2f+1 signature subsets, some naming since-departed
        # members.  For those, a voter vouches from its own carried
        # anchor: it reached this epoch holding the same certified
        # (epoch, seq, digest), so its own transition chain already
        # authenticates the content regardless of which signature copy
        # the vote embeds.
        if certificate.epoch == message.new_epoch - 1:
            if not self._certificate_valid_for(certificate, tuple(message.prev_members)):
                self._reject("bad_transition")
                return
        else:
            anchor = self.anchor
            if anchor is None or (
                anchor.epoch,
                anchor.seq,
                anchor.state_digest,
            ) != (certificate.epoch, certificate.seq, certificate.state_digest):
                self._reject("bad_transition")
                return
        self._record_transition_vote(message, digest_object(statement))

    def _record_transition_vote(self, vote: EpochTransitionVote, key: str) -> None:
        replica = self.replica
        votes = self._transition_votes.setdefault(key, {})
        votes[vote.replica] = vote
        if (
            replica.node_id not in votes
            and key not in self._transition_signed
            and len(votes) >= replica.fault_threshold + 1
        ):
            # Countersign: a member that cannot vouch for the outgoing
            # epoch itself (fresh joiner, or a straggler with no anchor)
            # joins once f+1 current members back the same statement — at
            # least one of them is correct, and the embedded certificate
            # already verified against the claimed outgoing membership.
            self._transition_signed.add(key)
            statement = transition_statement(
                vote.new_epoch, vote.members, vote.prev_members, vote.certificate
            )
            own = EpochTransitionVote(
                new_epoch=vote.new_epoch,
                members=vote.members,
                prev_members=vote.prev_members,
                certificate=vote.certificate,
                replica=replica.node_id,
                signature=replica.registry.sign(replica.node_id, statement),
            )
            self._metrics().increment("smr.checkpoint.transition_votes")
            replica._broadcast(own)
            votes[replica.node_id] = own
        quorum = _quorum_of(replica.members)
        if len(votes) < quorum:
            return
        record = EpochTransition(
            new_epoch=vote.new_epoch,
            members=vote.members,
            prev_members=vote.prev_members,
            certificate=vote.certificate,
            signatures=tuple(votes[signer].signature for signer in sorted(votes)),
        )
        self._adopt_transition(record)

    def _adopt_transition(self, record: EpochTransition) -> None:
        """A quorum formed for this epoch's transition record."""
        existing = next(
            (t for t in self.transitions if t.new_epoch == record.new_epoch), None
        )
        if existing is not None and (
            existing.certificate.seq >= record.certificate.seq
        ):
            return
        if existing is not None:
            self.transitions = [
                t for t in self.transitions if t.new_epoch != record.new_epoch
            ]
        self.transitions.append(record)
        self.transitions.sort(key=lambda t: t.new_epoch)
        self._metrics().increment("smr.checkpoint.epoch_transitions")
        certificate = record.certificate
        if self.anchor is None or certificate.seq > self.anchor.seq:
            # The quorum re-anchored a newer certificate than ours (a peer
            # entered the epoch with a fresher stable checkpoint): adopt
            # it, keeping only chain links that re-anchor it, and chase
            # the gap if it outruns our log.
            self.anchor = certificate
            self.transitions = [
                t
                for t in self.transitions
                if (
                    t.certificate.epoch,
                    t.certificate.seq,
                    t.certificate.state_digest,
                )
                == (certificate.epoch, certificate.seq, certificate.state_digest)
            ]
            if len(self.replica.decided_log) < certificate.seq:
                self._begin_transfer(certificate)

    # ------------------------------------------------------- stable checkpoints

    def valid_certificate(self, certificate: Optional[CheckpointCertificate]) -> bool:
        """Self-contained certificate check: signatures, membership, quorum."""
        if certificate is None:
            return False
        replica = self.replica
        if certificate.epoch != replica.epoch:
            return False
        return self._certificate_valid_for(certificate, replica.members)

    def _certificate_valid_for(
        self, certificate: Optional[CheckpointCertificate], members: Sequence[str]
    ) -> bool:
        """Certificate check against an explicit membership (epoch-agnostic).

        The cross-epoch verification path supplies the *outgoing*
        membership attested by a transition chain; the own-epoch path
        supplies the replica's current members.
        """
        if not isinstance(certificate, CheckpointCertificate):
            return False
        replica = self.replica
        if certificate.seq < 1:
            return False
        signers = certificate.signers
        if len(set(signers)) != len(signers):
            return False
        if not set(signers) <= set(members):
            return False
        if len(signers) < _quorum_of(members):
            return False
        statement = checkpoint_statement(
            certificate.epoch, certificate.seq, certificate.state_digest
        )
        # registry.verify (not verify_digest against one precomputed
        # digest): each signature's digest is recomputed in the token mode
        # it was *created* under, so certificates survive a global
        # digest-mode switch exactly like every other signature.
        return all(
            replica.registry.verify(signature, statement)
            for signature in certificate.signatures
        )

    def _transition_chain_error(
        self,
        certificate: CheckpointCertificate,
        transitions: Sequence["EpochTransition"],
    ) -> Optional[str]:
        """Verify a cross-epoch certificate against its transition chain.

        Returns ``None`` when the chain re-anchors ``certificate`` into
        the current epoch, or the reject-reason string otherwise.  The
        chain must cover every epoch from the certificate's to the current
        one with no gaps; each link must be quorum-signed by its own new
        membership — the top link by *our* members, each lower link by the
        membership the link above attests as outgoing — and the top link
        must re-anchor exactly the served certificate.  Trust therefore
        roots in the verifier's own membership knowledge, never in the
        responder.
        """
        replica = self.replica
        if not isinstance(certificate, CheckpointCertificate):
            return "bad_certificate"
        if certificate.epoch >= replica.epoch or certificate.epoch < 0:
            return "bad_certificate"
        chain = list(transitions)
        if any(not isinstance(record, EpochTransition) for record in chain):
            return "bad_transition"
        expected = list(range(certificate.epoch + 1, replica.epoch + 1))
        if [record.new_epoch for record in chain] != expected:
            return "skipped_epoch"
        top = chain[-1].certificate
        if not isinstance(top, CheckpointCertificate) or (
            top.epoch,
            top.seq,
            top.state_digest,
        ) != (certificate.epoch, certificate.seq, certificate.state_digest):
            return "transition_mismatch"
        members: Tuple[str, ...] = tuple(sorted(replica.members))
        previous_seq = None
        for record in reversed(chain):
            if tuple(record.members) != members:
                return "transition_mismatch"
            if not isinstance(record.certificate, CheckpointCertificate):
                return "bad_transition"
            # Re-anchored certificates may only grow going up the chain: a
            # link claiming a *newer* certificate than the link above it
            # contradicts the append-only log the chain certifies.
            if previous_seq is not None and record.certificate.seq > previous_seq:
                return "transition_mismatch"
            previous_seq = record.certificate.seq
            error = self._transition_record_error(record, members)
            if error is not None:
                return error
            members = tuple(sorted(record.prev_members))
        # `members` is now the membership of the certificate's own epoch,
        # as attested by the bottom link: the certificate itself must
        # verify against it.
        if not self._certificate_valid_for(certificate, members):
            return "bad_certificate"
        return None

    def _transition_record_error(
        self, record: "EpochTransition", members: Sequence[str]
    ) -> Optional[str]:
        """Check one transition record against the membership it claims."""
        signers = record.signers
        if len(set(signers)) != len(signers):
            return "bad_transition"
        if not set(signers) <= set(members):
            return "bad_transition"
        if len(signers) < _quorum_of(members):
            return "transition_under_quorum"
        statement = transition_statement(
            record.new_epoch, record.members, record.prev_members, record.certificate
        )
        if not all(
            self.replica.registry.verify(signature, statement)
            for signature in record.signatures
        ):
            return "transition_bad_signature"
        return None

    def _adopt_stable(
        self, certificate: CheckpointCertificate, realign: bool = True
    ) -> None:
        """Install a (locally formed or received-and-verified) certificate."""
        if self.stable is not None and certificate.seq <= self.stable.seq:
            return
        self.previous_stable = self.stable
        self.stable = certificate
        if self.anchor is not None and certificate.seq >= self.anchor.seq:
            # An own-epoch certificate at or past the anchor supersedes it:
            # future transfers serve the fresh certificate chain-free, and
            # the next reconfiguration re-anchors from here.
            self.anchor = None
            self.transitions = []
        metrics = self._metrics()
        metrics.increment("smr.checkpoint.stable")
        self._prune_below(certificate.seq)
        if len(self.replica.decided_log) < certificate.seq:
            # The certificate certifies operations we never decided: we are
            # the lagging replica.  Fetch the prefix from a certifier.
            self._begin_transfer(certificate, realign=realign)

    def _prune_below(self, seq: int) -> None:
        """Drop votes, slots and positions a certified ``seq`` obsoletes."""
        for key in [key for key in self._votes if key[0] <= seq]:
            del self._votes[key]
        self.replica._gc_below_checkpoint(seq, self._positions)
        # Positions below the certified checkpoint have no remaining
        # consumer (their slots are gone); prune them so the map stays
        # O(interval + tail) instead of growing with every operation ever
        # decided.
        for op_id in [
            op_id
            for op_id, position in self._positions.items()
            if position < seq
        ]:
            del self._positions[op_id]

    def _adopt_anchor(
        self,
        certificate: CheckpointCertificate,
        transitions: Sequence["EpochTransition"],
        realign: bool = True,
    ) -> None:
        """Install a chain-verified cross-epoch certificate as the anchor."""
        best = self.best_certificate()
        if best is not None and certificate.seq <= best.seq:
            return
        self.anchor = certificate
        self.transitions = list(transitions)
        self._metrics().increment("smr.checkpoint.anchors_adopted")
        self._prune_below(certificate.seq)
        if len(self.replica.decided_log) < certificate.seq:
            self._begin_transfer(certificate, realign=realign)

    def on_announce(self, message: CheckpointAnnounce, sender: str) -> None:
        if message.epoch != self.replica.epoch:
            return
        if sender not in self.replica.members:
            self._reject("non_member")
            return
        certificate = message.certificate
        best = self.best_certificate()
        if certificate is not None and (best is None or certificate.seq > best.seq):
            if getattr(certificate, "epoch", None) == self.replica.epoch:
                if self.valid_certificate(certificate):
                    self._adopt_stable(certificate)
                else:
                    self._reject("bad_certificate")
            else:
                # A certificate carried across reconfigurations: adopt it
                # (and begin a transfer if it outruns our log) only when
                # its transition chain verifies against our membership.
                error = self._transition_chain_error(
                    certificate, getattr(message, "transitions", ())
                )
                if error is None:
                    self._adopt_anchor(certificate, message.transitions)
                else:
                    self._reject(error)
        self.peer_view_seen = max(self.peer_view_seen, message.view)
        self._note_peer_log_length(message.log_length)

    def _note_peer_log_length(self, peer_length: int) -> None:
        """Track a co-replica's announced log length for tail catch-up.

        A certified checkpoint only covers multiples of the interval; the
        decided tail beyond it (or a short log before the first checkpoint
        forms) leaves no certificate to transfer.  If our log stays frozen
        below an announced length for a full grace window — i.e. we are
        stalled, not merely slower — a view change re-serves the tail
        through carried prepared slots.  While our log is still moving
        (ordinary in-flight lag) the deficit clock resets, so active groups
        never trigger spurious view changes.
        """
        replica = self.replica
        own_length = len(replica.decided_log)
        if self._tail_seen_length != own_length or self.transfer_blocking:
            # Our log moved (ordinary in-flight lag) or a transfer is
            # already chasing a certified gap: restart the observation.
            self._tail_seen_length = own_length
            self._tail_deficit_since = -1.0
            if self.transfer_blocking:
                return
        if peer_length <= own_length:
            # A peer that is not ahead says nothing about a stall — in
            # particular it must NOT clear a running deficit clock, or two
            # replicas stalled at the same length would suppress each
            # other's recovery with every announce round.
            return
        now = replica.sim.now
        if self._tail_deficit_since < 0:
            self._tail_deficit_since = now
            return
        period = replica.config.checkpoint_announce_period
        if now - self._tail_deficit_since < 2.0 * period:
            return
        if (
            self._last_tail_view_change >= 0
            and now - self._last_tail_view_change < 4.0 * period
        ):
            return
        self._last_tail_view_change = now
        self._tail_deficit_since = now
        self._metrics().increment("smr.checkpoint.tail_view_changes")
        # Propose past the highest view any co-replica announced: peers
        # already in a later view ignore votes for views at or below their
        # own, so a straggler proposing only ``view + 1`` would never
        # gather a quorum.
        replica._start_view_change(target=self.peer_view_seen + 1)

    def on_new_view_certificate(self, certificate: CheckpointCertificate) -> None:
        """The new-view message carried a stable checkpoint certificate.

        If it reaches beyond our decided log we must install it before
        executing the view's re-proposals (some covered operations may be
        garbage-collected out of them); the triggered transfer blocks
        execution and skips the post-install realignment view change — this
        view already re-executes under a fresh numbering.
        """
        replica = self.replica
        if certificate.seq <= len(replica.decided_log):
            # Nothing to transfer; still adopt a newer certificate so our
            # own GC and future votes benefit from it.
            if (
                self.stable is None or certificate.seq > self.stable.seq
            ) and self.valid_certificate(certificate):
                self._adopt_stable(certificate)
            return
        if not self.valid_certificate(certificate):
            self._reject("bad_certificate")
            return
        if self.stable is None or certificate.seq > self.stable.seq:
            self._adopt_stable(certificate, realign=False)
        else:
            # We already lag our own stable checkpoint; make sure a
            # transfer is actually in flight.
            self._begin_transfer(self.stable, realign=False)

    # ------------------------------------------------------------ gap handling

    def on_gap_hint(self, peer: str, seq: int) -> None:
        """An anti-entropy summary advertised a stable checkpoint at ``seq``.

        The hint carries no certificate, so nothing is trusted yet: we ask
        ``peer`` for a state transfer and validate the certificate that
        comes back with the response.  At most one hint probe is
        outstanding at a time (request-layer dedup), so periodic summaries
        cannot flood an already-recovering replica; the probe is
        single-attempt — if the hinting peer stonewalls, the next summary
        round names a fresh peer anyway.
        """
        replica = self.replica
        requests = self._requests
        if self.interval <= 0 or not replica.running or requests is None:
            return
        if seq <= len(replica.decided_log) or seq <= self.stable_seq:
            return
        if self.transfer_blocking:
            return  # a certified transfer is already in flight
        if requests.has_pending("hint"):
            return
        self._metrics().increment("smr.checkpoint.gap_hints")
        requests.request(
            "ckpt.transfer",
            self._transfer_payload,
            [peer],
            on_response=lambda payload, sender: self._handle_state_response(payload),
            satisfied=lambda: not replica.running
            or self.transfer_blocking
            or seq <= len(replica.decided_log),
            size_bytes=replica.config.message_bytes,
            policy=dc_replace(requests.policy, max_attempts=1),
            dedup_key="hint",
        )

    def _begin_transfer(
        self, certificate: CheckpointCertificate, realign: bool = True
    ) -> None:
        if self._transfer_target is not None and (
            certificate.seq <= self._transfer_target.seq
        ):
            return
        self._transfer_target = certificate
        self._realign_after_install = realign
        if self._gap_since < 0:
            self._gap_since = self.replica.sim.now
        self._metrics().increment("smr.checkpoint.gaps_detected")
        self._issue_transfer_request()

    def _transfer_payload(self) -> StateTransferRequest:
        """Build a fresh request (called by the request layer per attempt)."""
        replica = self.replica
        self._metrics().increment("smr.checkpoint.state_requests")
        return StateTransferRequest(
            epoch=replica.epoch,
            have_count=len(replica.decided_log),
            replica=replica.node_id,
        )

    def _issue_transfer_request(self) -> None:
        """(Re)issue the transfer through the request layer.

        Rotation over the certificate's signers, exponential backoff with
        seeded jitter, and the responder scoreboard all live in
        :class:`~repro.net.requests.RequestManager`; the request retries
        until the gap closes (``satisfied``), the replica stops, or a
        higher certificate supersedes it (we cancel and reissue).
        """
        target = self._transfer_target
        requests = self._requests
        if target is None or requests is None:
            return
        replica = self.replica
        members = set(replica.members)
        peers = [
            s
            for s in sorted(set(target.signers))
            if s != replica.node_id and s in members
        ]
        if not peers:
            # A cross-epoch target's signers belong to an earlier
            # membership and may all be gone; any current co-member can
            # hold the certified prefix, so rotate over them instead.
            peers = [m for m in sorted(members) if m != replica.node_id]
        if not peers:
            return
        if self._transfer_request_id is not None:
            requests.cancel(self._transfer_request_id)
        self._transfer_request_id = requests.request(
            "ckpt.transfer",
            self._transfer_payload,
            peers,
            on_response=lambda payload, sender: self._handle_state_response(payload),
            satisfied=lambda: not replica.running or not self.transfer_blocking,
            size_bytes=replica.config.message_bytes,
        )

    def build_state_response(
        self, message: StateTransferRequest, sender: str
    ) -> Optional[StateTransferResponse]:
        """Build the certified-prefix response for a transfer request.

        Returns ``None`` when we have nothing useful to serve (no stable
        checkpoint beyond the requester's log, or we lag it ourselves).
        Shared by the bare-frame path and the envelope path — and by a
        ``slow_drip`` adversary, whose delayed reply is deliberately
        *correct*: the attack is in the timing, not the content.
        """
        replica = self.replica
        if message.epoch != replica.epoch:
            return None
        if sender not in replica.members:
            self._reject("request_non_member")
            return None
        certificate, transitions = self._serving_chain()
        if certificate is None or certificate.seq <= message.have_count:
            return None  # nothing certified beyond the requester's log
        if len(replica.decided_log) < certificate.seq:
            return None  # we are lagging ourselves; cannot serve
        operations = tuple(replica.decided_log[message.have_count : certificate.seq])
        self._metrics().increment("smr.checkpoint.state_responses")
        return StateTransferResponse(
            epoch=replica.epoch,
            certificate=certificate,
            base_count=message.have_count,
            operations=operations,
            transitions=transitions,
        )

    @staticmethod
    def response_bytes(response: StateTransferResponse, message_bytes: int) -> int:
        return message_bytes + 64 * len(response.operations)

    def respond_transfer(
        self, envelope: RequestEnvelope, response: StateTransferResponse
    ) -> None:
        """Ship ``response`` correlated to ``envelope`` (adversary entry too:
        the responder behaviours craft their own responses and send them
        through the same correlated channel a correct server uses)."""
        if self._requests is None:
            return
        size = self.response_bytes(response, self.replica.config.message_bytes)
        self._requests.respond(envelope, response, size)

    def on_state_request(self, message: StateTransferRequest, sender: str) -> None:
        replica = self.replica
        response = self.build_state_response(message, sender)
        if response is None:
            return
        size = self.response_bytes(response, replica.config.message_bytes)
        replica.send_fn(sender, response, size)

    def on_state_response(self, message: StateTransferResponse, sender: str) -> None:
        """Validate and install a transferred decided-log prefix.

        Every check is local: the certificate must verify on its own, and
        the transferred operations must extend *our* log to exactly the
        certified digest.  A response that fails any check is dropped and
        counted — the log is never touched.
        """
        self._handle_state_response(message)

    def _handle_state_response(self, message) -> Optional[str]:
        """Classify (and, when valid, install) a state transfer response.

        Returns the request-layer verdict: ``"ok"`` (installed, or the
        gap closed some other way), ``"garbage"`` (well-formed but
        wrong-content — scoreboard-weighted heavily), ``"stale"``
        (genuinely old or raced our own progress), ``"ignore"`` (says
        nothing about the responder, e.g. an epoch we already left).
        """
        replica = self.replica
        if not isinstance(message, StateTransferResponse):
            self._reject("malformed_response")
            return "garbage"
        if message.epoch != replica.epoch:
            return "ignore"
        certificate = message.certificate
        transitions = message.transitions
        if getattr(certificate, "epoch", None) == replica.epoch:
            if not self.valid_certificate(certificate):
                self._reject("bad_certificate")
                return "garbage"
        else:
            # A certificate minted in an earlier epoch: only a contiguous,
            # per-epoch-quorum-signed transition chain down to its epoch
            # makes it trustworthy here.  Skipped epochs, under-quorum or
            # tampered records, and chains that re-anchor a different
            # certificate are all garbage — the responder chose to serve
            # an unverifiable chain.
            error = self._transition_chain_error(certificate, transitions)
            if error is not None:
                self._reject(error)
                return "garbage"
        log = replica.decided_log
        if certificate.seq <= len(log):
            if self.transfer_blocking:
                # A valid but genuinely old certificate that does not
                # advance the open gap: the `stale_cert` adversary's
                # signature move.  Score it and rotate.
                self._reject("stale_certificate")
                return "stale"
            return "ok"  # already caught up past this checkpoint
        if message.base_count != len(log):
            # The local log moved (or the responder lied about the base);
            # retry from scratch rather than splicing at a wrong offset —
            # the retried request carries our fresh log length.
            self._reject("stale_base")
            return "stale"
        if len(message.operations) != certificate.seq - message.base_count:
            self._reject("length_mismatch")
            return "garbage"
        if any(op.op_id in replica._executed_ops for op in message.operations):
            self._reject("duplicate_operation")
            return "garbage"
        if self._chained_digest_with(message.operations) != certificate.state_digest:
            self._reject("digest_mismatch")
            return "garbage"
        self._install(certificate, message.operations, transitions)
        return "ok"

    def _install(
        self,
        certificate: CheckpointCertificate,
        operations: Tuple["Operation", ...],
        transitions: Tuple["EpochTransition", ...] = (),
    ) -> None:
        replica = self.replica
        metrics = self._metrics()
        for operation in operations:
            replica._executed_ops.add(operation.op_id)
            replica._pending_requests.pop(operation.op_id, None)
            replica._commit(operation)  # appends, notifies decide_fn, hooks us
        metrics.increment("smr.checkpoint.transfers_completed")
        metrics.increment("smr.checkpoint.ops_installed", len(operations))
        target = self._transfer_target
        still_lagging = target is not None and len(replica.decided_log) < target.seq
        realign = self._realign_after_install
        if not still_lagging:
            self._transfer_target = None
            self._realign_after_install = True
            self._gap_closed()
        if certificate.epoch != replica.epoch:
            self._adopt_anchor(certificate, transitions)
        elif self.stable is None or certificate.seq > self.stable.seq:
            self._adopt_stable(certificate)
        if still_lagging:
            # This response served an *older* certificate than the pending
            # transfer target (e.g. a hint-path response raced a new-view
            # certificate).  The higher checkpoint's gap is still open, so
            # execution must stay blocked — clearing the target here would
            # let new-view re-proposals leapfrog the missing prefix — and
            # the remaining gap is chased immediately (our base moved, so
            # the outstanding request's response would be stale-based).
            self._issue_transfer_request()
            return
        replica._after_state_install(realign=realign)

    # ------------------------------------------------------------------- timer

    def _arm_announce_timer(self) -> None:
        if self._announce_armed:
            return
        self._announce_armed = True
        self.replica.sim.schedule(
            self.replica.config.checkpoint_announce_period,
            self._announce_tick,
            tag=f"{self.replica.node_id}:ckpt-announce",
        )

    def _announce_tick(self) -> None:
        self._announce_armed = False
        replica = self.replica
        if not replica.running:
            return
        self._arm_announce_timer()
        if len(replica.members) > 1:
            self._metrics().increment("smr.checkpoint.announces")
            certificate, transitions = self._serving_chain()
            replica._broadcast(
                CheckpointAnnounce(
                    epoch=replica.epoch,
                    certificate=certificate,
                    log_length=len(replica.decided_log),
                    view=replica.view,
                    transitions=transitions,
                )
            )
        # Stuck-transfer retries moved to the unified request layer
        # (rotation + jittered backoff in RequestManager); the announce
        # tick no longer owns recovery liveness.

    # ------------------------------------------------------------------ routing

    def handle(self, payload, sender: str) -> bool:
        """Route a checkpoint frame; returns False for other payload types."""
        if isinstance(payload, Checkpoint):
            self.on_checkpoint(payload, sender)
        elif isinstance(payload, EpochTransitionVote):
            self.on_transition_vote(payload, sender)
        elif isinstance(payload, CheckpointAnnounce):
            self.on_announce(payload, sender)
        elif isinstance(payload, StateTransferRequest):
            self.on_state_request(payload, sender)
        elif isinstance(payload, StateTransferResponse):
            self.on_state_response(payload, sender)
        elif isinstance(payload, RequestEnvelope):
            self._on_transfer_request_envelope(payload, sender)
        elif isinstance(payload, ResponseEnvelope):
            if self._requests is not None:
                self._requests.on_envelope(payload, sender)
        else:
            return False
        return True

    def _on_transfer_request_envelope(
        self, envelope: RequestEnvelope, sender: str
    ) -> None:
        """Serve an envelope-wrapped transfer request (the retry-layer path)."""
        requests = self._requests
        if requests is None:
            return
        validated = requests.validate_request(envelope, "ckpt.transfer", sender)
        if validated is None:
            return
        message = validated.payload
        if not isinstance(message, StateTransferRequest):
            self._metrics().increment("req.rejected_malformed")
            return
        response = self.build_state_response(message, sender)
        if response is None:
            return
        size = self.response_bytes(response, self.replica.config.message_bytes)
        requests.respond(validated, response, size)

    # ------------------------------------------------------------------- epoch

    def reset_for_epoch(self) -> None:
        """A reconfiguration installed a new epoch: certificates die with it.

        The decided log (and its positions) persists across epochs — only
        the epoch-scoped certificate/vote/transfer state resets, because
        certificates are signed over the epoch and the membership that
        signed them may be gone.  :meth:`on_epoch_change` (the normal
        reconfiguration entry point) additionally carries the outgoing
        best certificate forward as the new epoch's anchor.
        """
        self.stable = None
        self.previous_stable = None
        self.anchor = None
        self.transitions = []
        self._transition_votes.clear()
        self._transition_signed.clear()
        self._votes.clear()
        self._transfer_target = None
        self._gap_since = -1.0
        # Views restart with the epoch (reset_for_epoch on the replica),
        # so stale peer-view knowledge must not inflate recovery proposals.
        self.peer_view_seen = 0
        # Outstanding requests were signed-for under the old epoch's
        # membership; their responses would be epoch-mismatched anyway.
        if self._requests is not None:
            self._requests.cancel_all()
        self._transfer_request_id = None
        # An aborted new-view transfer must not leave realign=False behind,
        # or the next epoch's hint-path install would skip its view change.
        self._realign_after_install = True

    def forget_log(self) -> None:
        """The replica dropped its decided log (re-homed to a new group).

        The incremental chain-digest cache and tail-deficit tracking fold
        over log positions, so they must restart with the emptied log —
        a stale cache would emit digests for operations that are gone.
        """
        self._chain_count = 0
        self._chain_digest = ""
        self._tail_seen_length = -1
        self._tail_deficit_since = -1.0


__all__ = [
    "Checkpoint",
    "CheckpointCertificate",
    "CheckpointAnnounce",
    "EpochTransition",
    "EpochTransitionVote",
    "StateTransferRequest",
    "StateTransferResponse",
    "CheckpointManager",
    "checkpoint_statement",
    "transition_statement",
    "state_digest_of",
]
