"""Tests for the synchronous (Dolev-Strong) SMR engine."""

import pytest

from repro.smr import ReplicaGroupHarness, SmrConfig, SyncSmrReplica
from repro.smr.base import sync_fault_threshold


class TestFaultThreshold:
    @pytest.mark.parametrize(
        "size,expected", [(1, 0), (2, 0), (3, 1), (4, 1), (5, 2), (7, 3), (20, 9)]
    )
    def test_sync_threshold(self, size, expected):
        assert sync_fault_threshold(size) == expected


class TestSingleGroupAgreement:
    def test_single_replica_group_decides(self):
        harness = ReplicaGroupHarness(group_size=1, replica_class=SyncSmrReplica)
        op = harness.propose("replica-0", "noop", {"x": 1})
        harness.run(until=10.0)
        assert harness.all_correct_decided(op.op_id)

    def test_all_replicas_decide_same_operation(self):
        harness = ReplicaGroupHarness(
            group_size=4, replica_class=SyncSmrReplica, config=SmrConfig(round_duration=0.5)
        )
        op = harness.propose("replica-0", "broadcast", "hello")
        harness.run(until=20.0)
        assert harness.all_correct_decided(op.op_id)

    def test_decision_latency_is_f_plus_one_rounds(self):
        round_duration = 1.0
        harness = ReplicaGroupHarness(
            group_size=7,
            replica_class=SyncSmrReplica,
            config=SmrConfig(round_duration=round_duration),
        )
        op = harness.propose("replica-0", "broadcast", "payload")
        harness.run(until=30.0)
        latency = harness.decision_latency(op.op_id)
        f = sync_fault_threshold(7)
        # The proposal waits for the next round boundary, then runs f+1 rounds.
        assert latency <= (f + 3) * round_duration
        assert latency >= (f + 1) * round_duration

    def test_multiple_proposers_all_decide_everywhere(self):
        harness = ReplicaGroupHarness(
            group_size=5, replica_class=SyncSmrReplica, config=SmrConfig(round_duration=0.5)
        )
        ops = [
            harness.propose(f"replica-{i}", "broadcast", f"payload-{i}") for i in range(5)
        ]
        harness.run(until=30.0)
        for op in ops:
            assert harness.all_correct_decided(op.op_id)

    def test_logs_contain_same_operations(self):
        harness = ReplicaGroupHarness(
            group_size=4, replica_class=SyncSmrReplica, config=SmrConfig(round_duration=0.5)
        )
        for i in range(3):
            harness.propose("replica-1", "op", i, op_id=f"op-{i}")
        harness.run(until=30.0)
        logs = harness.decided_logs()
        assert all(set(log) == set(logs[0]) for log in logs)
        assert set(logs[0]) == {"op-0", "op-1", "op-2"}

    def test_silent_byzantine_minority_does_not_block(self):
        harness = ReplicaGroupHarness(
            group_size=5,
            replica_class=SyncSmrReplica,
            config=SmrConfig(round_duration=0.5),
            silent_byzantine=["replica-3", "replica-4"],
        )
        op = harness.propose("replica-0", "broadcast", "x")
        harness.run(until=30.0)
        assert harness.all_correct_decided(op.op_id)

    def test_logs_identical_order(self):
        harness = ReplicaGroupHarness(
            group_size=4, replica_class=SyncSmrReplica, config=SmrConfig(round_duration=0.5)
        )
        harness.propose("replica-0", "op", "a", op_id="a")
        harness.propose("replica-2", "op", "b", op_id="b")
        harness.run(until=30.0)
        logs = harness.decided_logs()
        assert all(log == logs[0] for log in logs)
