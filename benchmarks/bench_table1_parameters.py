"""Table 1: Atum system parameters and typical values.

Regenerates the parameter table and checks that configurations derived for the
paper's system sizes fall inside the typical ranges the table reports.
"""

from repro.analysis import format_table
from repro.core.config import AtumParameters, SmrKind, parameter_table


def _build_table():
    rows = parameter_table()
    derived = []
    for size in (50, 200, 800, 1400):
        for kind in (SmrKind.SYNC, SmrKind.ASYNC):
            params = AtumParameters.for_system_size(size, kind)
            derived.append(
                {
                    "system_size": size,
                    "engine": kind.value,
                    "hc": params.hc,
                    "rwl": params.rwl,
                    "gmax": params.gmax,
                    "gmin": params.gmin,
                    "k": params.k,
                }
            )
    return rows, derived


def test_table1_parameters(benchmark):
    rows, derived = benchmark.pedantic(_build_table, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Table 1: system parameters"))
    print()
    print(format_table(derived, title="Derived configurations (via the Figure 4 guideline)"))
    # Typical-value sanity checks from Table 1.
    for row in derived:
        assert 2 <= row["hc"] <= 12
        assert 4 <= row["rwl"] <= 15
        assert row["gmin"] == row["gmax"] // 2
        assert 3 <= row["k"] <= 7
