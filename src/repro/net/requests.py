"""Unified request/response layer: retries, backoff, rotation, scoreboard.

Before this module, every recovery path owned a bespoke retry knob:
checkpoint state transfer re-asked on a fixed ``state_transfer_timeout``,
anti-entropy resends hid behind fixed ``resend_cooldown`` /
``repropose_cooldown`` constants, and checkpoint hints rate-limited on the
announce period.  Fixed timers synchronise: after a heal every starved
replica re-asks in lockstep, and a single adversarial responder can stall
each of them for a full timeout per attempt with no memory of who stalled
whom.  Following the policy-free-middleware framing, this module factors
the whole concern into one swappable policy object plus a small manager:

* **Correlated envelopes** — every request carries a fresh ``request_id``
  and an absolute sim-time ``deadline``; responses echo the id.  Replies
  that are malformed, unsolicited, expired, replayed or from a peer we
  never queried are rejected and counted, never dispatched.
* **Seeded-jitter exponential backoff** — retry ``n`` waits
  ``min(max_timeout, base * factor**n)`` scaled by ``1 + jitter*(2u-1)``
  with ``u`` drawn from a named, lazily created RNG stream, so retries
  desynchronise deterministically.  The *first* timeout is unjittered:
  a run that never retries draws no randomness at all.
* **Responder rotation** — each retry targets the next candidate peer,
  skipping quarantined ones, so one bad responder cannot monopolise a
  recovery.
* **Per-peer scoreboard** — timeouts, garbage replies and stale
  certificates add suspicion weight; suspicion decays exponentially
  (half-life ``decay_half_life``) and a peer whose decayed suspicion
  crosses ``quarantine_threshold`` is quarantined *temporarily*: decay
  alone guarantees release, so timeouts can never permanently evict a
  peer that was merely slow.

The manager is inert by construction: constructing one draws no RNG,
schedules no events and registers nothing — cost appears only when a
request is actually issued.  Runs that never issue a request are
byte-identical to builds without this module.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.sim.simulator import Simulator


# --------------------------------------------------------------------- policy


@dataclass(frozen=True)
class RequestPolicy:
    """Retry/timeout/backoff/quarantine knobs for one request family.

    Attributes:
        base_timeout: Deadline of the first attempt, in sim seconds.
        backoff_factor: Multiplier applied to the timeout per retry.
        max_timeout: Ceiling on the (pre-jitter) per-attempt timeout.
        jitter: Half-width of the relative jitter band applied to retry
            timeouts (``0.25`` → uniform in ``[0.75, 1.25]`` of nominal).
            The first attempt is never jittered.
        max_attempts: Total attempts before giving up (``None`` = retry
            forever — right for transfers that *must* eventually land).
        timeout_weight: Suspicion added when a queried peer times out.
        garbage_weight: Suspicion added for a well-formed but
            wrong-content reply (digest mismatch, tampered body).
        stale_weight: Suspicion added for a genuinely-old-but-useless
            reply (stale certificate, stale base).
        quarantine_threshold: Decayed suspicion at which a peer stops
            being selected for new attempts.
        decay_half_life: Sim seconds for suspicion to halve; guarantees
            quarantine release with no further evidence.
        spread_rotation: When True (default), each request starts its
            responder rotation at an owner- and sequence-derived offset
            so a fleet of requesters spreads load (and trust) across the
            candidate set.  Set False for request families whose caller
            orders candidates by preference — e.g. anti-entropy pulls put
            the summary sender (the one peer *known* to hold the data)
            first, and with bounded ``max_attempts`` a scattered first
            attempt can exhaust the budget on peers that never had it.
        adaptive_quarantine: When True, the quarantine threshold adapts
            to the observed evidence rate: a hostile window (many
            timeout/garbage/stale events per sim second) tightens the
            threshold toward ``min_quarantine_threshold`` so repeat
            offenders are benched sooner, and a quiet window relaxes it
            back to ``quarantine_threshold``.  Off by default — static
            runs are byte-identical to PR-6 behaviour.
        fault_window: Length (sim seconds) of the rolling window over
            which the evidence rate is measured.
        adaptive_gain: How strongly excess fault rate tightens the
            threshold: ``base / (1 + gain * (rate - quiet_fault_rate))``.
        quiet_fault_rate: Evidence rate (events per sim second) at or
            below which the threshold stays at its static base value.
        min_quarantine_threshold: Floor the adaptive threshold never
            drops below.  Strictly positive, so exponential decay still
            guarantees quarantine release with no further evidence.
    """

    base_timeout: float = 3.0
    backoff_factor: float = 1.6
    max_timeout: float = 20.0
    jitter: float = 0.25
    max_attempts: Optional[int] = None
    timeout_weight: float = 1.0
    garbage_weight: float = 3.0
    stale_weight: float = 2.0
    quarantine_threshold: float = 4.0
    decay_half_life: float = 20.0
    spread_rotation: bool = True
    adaptive_quarantine: bool = False
    fault_window: float = 20.0
    adaptive_gain: float = 2.0
    quiet_fault_rate: float = 0.05
    min_quarantine_threshold: float = 2.0

    def timeout_for(self, attempt: int) -> float:
        """Nominal (pre-jitter) timeout of attempt ``attempt`` (0-based)."""
        # Cap the exponent: long-lived requests (max_attempts=None) can
        # accumulate attempt counts large enough that the raw pow
        # overflows a float, and the backoff is saturated at max_timeout
        # well before that anyway.
        scaled = self.base_timeout * self.backoff_factor ** min(attempt, 64)
        return min(self.max_timeout, scaled)


# -------------------------------------------------------------------- frames


@dataclass(frozen=True)
class RequestEnvelope:
    """A correlated request: id, kind, payload, and an absolute deadline.

    ``deadline`` is the sim time after which the requester stops caring;
    honest servers drop expired requests (and count them), and a
    ``slow_drip`` adversary exploits it by answering just inside it.
    """

    request_id: str
    kind: str
    payload: Any
    requester: str
    sent_at: float
    deadline: float


@dataclass(frozen=True)
class ResponseEnvelope:
    """A reply correlated to a :class:`RequestEnvelope` by ``request_id``."""

    request_id: str
    kind: str
    payload: Any
    responder: str


# ----------------------------------------------------------------- scoreboard


@dataclass
class PeerScore:
    """Decaying suspicion for one peer, with quarantine bookkeeping."""

    suspicion: float = 0.0
    last_update: float = 0.0
    timeouts: int = 0
    garbage: int = 0
    stale: int = 0
    quarantined: bool = False

    def decayed(self, now: float, half_life: float) -> float:
        if self.suspicion <= 0.0:
            return 0.0
        if half_life <= 0.0:
            return self.suspicion
        elapsed = max(0.0, now - self.last_update)
        return self.suspicion * 0.5 ** (elapsed / half_life)


class Scoreboard:
    """Per-peer suspicion scores shared by every request a manager issues."""

    def __init__(self, sim: Simulator, policy: RequestPolicy) -> None:
        self._sim = sim
        self._policy = policy
        self._scores: Dict[str, PeerScore] = {}
        self._window_start: Optional[float] = None
        self._window_events: int = 0
        self._rate: float = 0.0

    def _score(self, peer: str) -> PeerScore:
        if peer not in self._scores:
            self._scores[peer] = PeerScore()
        return self._scores[peer]

    def _threshold_for_rate(self, rate: float) -> float:
        policy = self._policy
        if rate <= policy.quiet_fault_rate:
            return policy.quarantine_threshold
        excess = rate - policy.quiet_fault_rate
        tightened = policy.quarantine_threshold / (1.0 + policy.adaptive_gain * excess)
        return max(policy.min_quarantine_threshold, tightened)

    def _roll_window(self, now: float) -> None:
        if self._window_start is None:
            self._window_start = now
            # Record the threshold in force when measurement starts, so a
            # run shorter than one window still reports the (base) value.
            self._sim.metrics.observe(
                "req.quarantine_threshold", self._threshold_for_rate(self._rate)
            )
            return
        elapsed = now - self._window_start
        if elapsed < self._policy.fault_window:
            return
        self._rate = self._window_events / elapsed
        self._window_start = now
        self._window_events = 0
        self._sim.metrics.observe(
            "req.quarantine_threshold", self._threshold_for_rate(self._rate)
        )

    def effective_threshold(self, now: float) -> float:
        """The quarantine threshold in force at ``now``.

        Static (``policy.quarantine_threshold``) unless the policy enables
        ``adaptive_quarantine``, in which case the threshold tightens while
        the measured evidence rate exceeds ``quiet_fault_rate`` and relaxes
        back to the base once a window measures quiet again.
        """
        policy = self._policy
        if not policy.adaptive_quarantine:
            return policy.quarantine_threshold
        self._roll_window(now)
        return self._threshold_for_rate(self._rate)

    def note(self, peer: str, kind: str) -> None:
        """Record evidence against ``peer`` (``timeout``/``garbage``/``stale``)."""
        policy = self._policy
        weight = {
            "timeout": policy.timeout_weight,
            "garbage": policy.garbage_weight,
            "stale": policy.stale_weight,
        }[kind]
        now = self._sim.now
        if policy.adaptive_quarantine:
            self._window_events += 1
        score = self._score(peer)
        score.suspicion = score.decayed(now, policy.decay_half_life) + weight
        score.last_update = now
        if kind == "timeout":
            score.timeouts += 1
        elif kind == "garbage":
            score.garbage += 1
        else:
            score.stale += 1
        metrics = self._sim.metrics
        metrics.increment(f"req.evidence_{kind}")
        if not score.quarantined and score.suspicion >= self.effective_threshold(now):
            score.quarantined = True
            metrics.increment("req.quarantined")

    def quarantined(self, peer: str) -> bool:
        """Whether ``peer`` is currently quarantined (decay may release it)."""
        score = self._scores.get(peer)
        if score is None or not score.quarantined:
            return False
        now = self._sim.now
        if score.decayed(now, self._policy.decay_half_life) < self.effective_threshold(
            now
        ):
            score.quarantined = False
            self._sim.metrics.increment("req.quarantine_released")
            return False
        return True

    def snapshot(self) -> Dict[str, PeerScore]:
        """The raw score map (shared, not copied); empty when never used."""
        return self._scores


# ------------------------------------------------------------------- manager


@dataclass
class _Pending:
    request_id: str
    kind: str
    payload: Any
    peers: Tuple[str, ...]
    policy: RequestPolicy
    on_response: Optional[Callable[[Any, str], Optional[str]]]
    satisfied: Optional[Callable[[], bool]]
    on_give_up: Optional[Callable[[], None]]
    on_done: Optional[Callable[[], None]]
    size_bytes: int
    dedup_key: Optional[str]
    rotation: int = 0
    attempts: int = 0
    queried: set = field(default_factory=set)
    deadline: float = 0.0
    done: bool = False


class RequestManager:
    """Issues correlated requests with rotation, backoff and a scoreboard.

    One manager per protocol endpoint (a checkpoint manager, an
    anti-entropy repairer).  ``send_fn(peer, payload, size_bytes)`` ships
    a :class:`RequestEnvelope`; the owner routes every incoming
    :class:`ResponseEnvelope` to :meth:`on_envelope`.

    Construction is free of side effects: no RNG stream is created, no
    event is scheduled, the scoreboard starts empty.  All of that happens
    lazily on the first :meth:`request`.
    """

    def __init__(
        self,
        sim: Simulator,
        owner: str,
        send_fn: Callable[[str, Any, int], None],
        policy: Optional[RequestPolicy] = None,
        stream_name: Optional[str] = None,
    ) -> None:
        self.sim = sim
        self.owner = owner
        self.send_fn = send_fn
        self.policy = policy or RequestPolicy()
        self._stream_name = stream_name or f"requests.{owner}"
        self._rng = None
        # Per-instance id counter: managers are built fresh each run, so
        # request ids are deterministic per run (a shared class counter
        # would leak across in-process re-runs and break byte-identity).
        self._next_id = 0
        # Rotation base derived from the owner address (crc32, not hash():
        # stable across interpreter runs) so different requesters start
        # their responder rotation at different candidates instead of all
        # hammering the sorted-first peer.
        self._rotation_base = zlib.crc32(owner.encode("utf-8")) & 0xFFFF
        self.scoreboard = Scoreboard(sim, self.policy)
        self._pending: Dict[str, _Pending] = {}
        self._by_dedup: Dict[str, str] = {}
        # Recently completed/cancelled ids, to reject replayed responses.
        self._recent: List[str] = []
        self._recent_set: set = set()

    # ---------------------------------------------------------------- helpers

    def _jitter(self, policy: RequestPolicy) -> float:
        if policy.jitter <= 0.0:
            return 1.0
        if self._rng is None:
            self._rng = self.sim.rng.stream(self._stream_name)
        return 1.0 + policy.jitter * (2.0 * self._rng.random() - 1.0)

    def _remember(self, request_id: str) -> None:
        self._recent.append(request_id)
        self._recent_set.add(request_id)
        while len(self._recent) > 256:
            self._recent_set.discard(self._recent.pop(0))

    def _finish(self, pending: _Pending) -> None:
        if pending.done:
            return
        pending.done = True
        self._pending.pop(pending.request_id, None)
        if pending.dedup_key is not None:
            if self._by_dedup.get(pending.dedup_key) == pending.request_id:
                del self._by_dedup[pending.dedup_key]
        self._remember(pending.request_id)
        if pending.on_done is not None:
            pending.on_done()

    def _pick_peer(self, pending: _Pending) -> str:
        # The rotation start is offset per request so successive requests
        # spread their first attempts across the candidate set instead of
        # always hammering (and trusting) the sorted-first peer.
        peers = pending.peers
        start = pending.rotation + pending.attempts
        for offset in range(len(peers)):
            peer = peers[(start + offset) % len(peers)]
            if not self.scoreboard.quarantined(peer):
                return peer
        # Every candidate is quarantined: liveness beats suspicion — use
        # the rotation peer anyway (decay will release it soon regardless).
        return peers[start % len(peers)]

    # -------------------------------------------------------------------- API

    def request(
        self,
        kind: str,
        payload: Any,
        peers: Sequence[str],
        *,
        on_response: Optional[Callable[[Any, str], Optional[str]]] = None,
        satisfied: Optional[Callable[[], bool]] = None,
        on_give_up: Optional[Callable[[], None]] = None,
        on_done: Optional[Callable[[], None]] = None,
        size_bytes: int = 256,
        policy: Optional[RequestPolicy] = None,
        dedup_key: Optional[str] = None,
    ) -> Optional[str]:
        """Issue a request; returns its id (``None`` if deduplicated).

        ``on_response(payload, responder)`` classifies each reply:
        ``"ok"`` completes the request, ``"garbage"``/``"stale"`` add the
        matching scoreboard evidence and retry immediately with rotation,
        ``None``/``"ignore"`` leaves the request pending (the reply said
        nothing either way).  ``satisfied()`` is consulted at each timeout
        so externally-resolved requests complete quietly instead of
        retrying forever.

        ``payload`` may be a zero-argument callable, invoked at *each*
        attempt: retried requests then carry fresh state (e.g. the
        requester's current log length) instead of a snapshot frozen at
        issue time.
        """
        if not peers:
            return None
        if dedup_key is not None and dedup_key in self._by_dedup:
            self.sim.metrics.increment("req.deduplicated")
            return None
        sequence = self._next_id
        request_id = f"{self.owner}:req:{sequence}"
        self._next_id += 1
        effective = policy or self.policy
        pending = _Pending(
            request_id=request_id,
            rotation=(self._rotation_base + sequence) if effective.spread_rotation else 0,
            kind=kind,
            payload=payload,
            peers=tuple(peers),
            policy=effective,
            on_response=on_response,
            satisfied=satisfied,
            on_give_up=on_give_up,
            on_done=on_done,
            size_bytes=size_bytes,
            dedup_key=dedup_key,
        )
        self._pending[request_id] = pending
        if dedup_key is not None:
            self._by_dedup[dedup_key] = request_id
        self._attempt(pending)
        return request_id

    def _attempt(self, pending: _Pending) -> None:
        if pending.done:
            return
        policy = pending.policy
        if policy.max_attempts is not None and pending.attempts >= policy.max_attempts:
            self.sim.metrics.increment("req.gave_up")
            self._finish(pending)
            if pending.on_give_up is not None:
                pending.on_give_up()
            return
        if policy.adaptive_quarantine:
            # Every attempt ticks the fault-rate window, so the adaptive
            # threshold rolls (and is recorded) even when no evidence
            # events arrive — a quiet period must relax it back.
            self.scoreboard.effective_threshold(self.sim.now)
        timeout = policy.timeout_for(pending.attempts)
        if pending.attempts > 0:
            timeout *= self._jitter(policy)
        peer = self._pick_peer(pending)
        pending.attempts += 1
        pending.queried.add(peer)
        now = self.sim.now
        pending.deadline = now + timeout
        payload = pending.payload() if callable(pending.payload) else pending.payload
        envelope = RequestEnvelope(
            request_id=pending.request_id,
            kind=pending.kind,
            payload=payload,
            requester=self.owner,
            sent_at=now,
            deadline=pending.deadline,
        )
        self.sim.metrics.increment("req.sent")
        self.send_fn(peer, envelope, pending.size_bytes)
        expected = pending.attempts

        def _timeout(pending=pending, peer=peer, expected=expected) -> None:
            self._on_timeout(pending, peer, expected)

        self.sim.schedule(timeout, _timeout, tag=f"{self.owner}:req-timeout")

    def _on_timeout(self, pending: _Pending, peer: str, expected: int) -> None:
        if pending.done or pending.attempts != expected:
            return  # superseded by a response-driven retry
        if pending.satisfied is not None and pending.satisfied():
            self.sim.metrics.increment("req.resolved_externally")
            self._finish(pending)
            return
        self.sim.metrics.increment("req.timeouts")
        self.scoreboard.note(peer, "timeout")
        self._attempt(pending)

    def on_envelope(self, payload: Any, sender: str) -> bool:
        """Validate and dispatch a :class:`ResponseEnvelope`.

        Returns True when the payload was consumed (even if rejected);
        False when it is not a response envelope at all.
        """
        if not isinstance(payload, ResponseEnvelope):
            return False
        metrics = self.sim.metrics
        if not isinstance(payload.request_id, str) or not isinstance(
            payload.kind, str
        ):
            metrics.increment("req.rejected_malformed")
            return True
        pending = self._pending.get(payload.request_id)
        if pending is None:
            if payload.request_id in self._recent_set:
                metrics.increment("req.rejected_replayed")
            else:
                metrics.increment("req.rejected_unknown")
            return True
        if payload.kind != pending.kind:
            metrics.increment("req.rejected_malformed")
            return True
        if sender not in pending.queried:
            metrics.increment("req.rejected_unsolicited")
            return True
        verdict = (
            pending.on_response(payload.payload, sender)
            if pending.on_response is not None
            else "ok"
        )
        if verdict == "ok":
            metrics.increment("req.completed")
            self._finish(pending)
        elif verdict in ("garbage", "stale"):
            metrics.increment(f"req.{verdict}_replies")
            self.scoreboard.note(sender, verdict)
            # Retry immediately with rotation; bump attempts bookkeeping so
            # the outstanding timeout for this attempt lapses harmlessly.
            self._attempt(pending)
        # None / "ignore": the reply proved nothing; keep waiting.
        return True

    def validate_request(
        self, envelope: Any, expected_kind: str, sender: Optional[str] = None
    ) -> Optional[RequestEnvelope]:
        """Server-side envelope check; returns the envelope or ``None``.

        Rejects (and counts) malformed envelopes, misaddressed envelopes
        (the wire-level sender does not match the claimed requester, so a
        reply would go to a third party) and requests whose deadline
        already passed — an honest server never does work the requester
        has stopped waiting for.
        """
        metrics = self.sim.metrics
        if not isinstance(envelope, RequestEnvelope):
            metrics.increment("req.rejected_malformed")
            return None
        if (
            envelope.kind != expected_kind
            or not isinstance(envelope.request_id, str)
            or not isinstance(envelope.requester, str)
        ):
            metrics.increment("req.rejected_malformed")
            return None
        if sender is not None and sender != envelope.requester:
            metrics.increment("req.rejected_misaddressed")
            return None
        if self.sim.now > envelope.deadline:
            metrics.increment("req.rejected_expired")
            return None
        return envelope

    def respond(
        self, envelope: RequestEnvelope, payload: Any, size_bytes: int = 256
    ) -> None:
        """Ship a correlated response back to the envelope's requester."""
        response = ResponseEnvelope(
            request_id=envelope.request_id,
            kind=envelope.kind,
            payload=payload,
            responder=self.owner,
        )
        self.send_fn(envelope.requester, response, size_bytes)

    def cancel(self, request_id: str) -> None:
        pending = self._pending.get(request_id)
        if pending is not None:
            self._finish(pending)

    def cancel_all(self) -> None:
        for pending in list(self._pending.values()):
            self._finish(pending)

    def pending_count(self) -> int:
        return len(self._pending)

    def has_pending(self, dedup_key: str) -> bool:
        return dedup_key in self._by_dedup


# ------------------------------------------------------------------- backoff


class JitteredBackoff:
    """Per-key seeded-jitter exponential backoff gate.

    Replaces fixed cooldown constants: ``ready(key)`` answers "may I act
    on ``key`` now?", and acting pushes the next allowance out by
    ``base * factor**n`` (capped at ``max_delay``) scaled by a jittered
    factor drawn from a lazily created named stream.  With ``jitter=0``
    no RNG is ever touched — the anti-lockstep regression test uses that
    to demonstrate the synchronized-retry pathology this class removes.
    Keys whose pressure subsides are forgotten via :meth:`reset`.
    """

    def __init__(
        self,
        sim: Simulator,
        stream_name: str,
        base: float,
        factor: float = 1.6,
        jitter: float = 0.35,
        max_delay: float = 16.0,
    ) -> None:
        self.sim = sim
        self._stream_name = stream_name
        self.base = base
        self.factor = factor
        self.jitter = jitter
        self.max_delay = max_delay
        self._rng = None
        # key -> (next_allowed_time, consecutive_attempts)
        self._state: Dict[Any, Tuple[float, int]] = {}

    def ready(self, key: Any) -> bool:
        state = self._state.get(key)
        return state is None or self.sim.now >= state[0]

    def attempt(self, key: Any) -> bool:
        """Gate an action on ``key``: True (and arm the backoff) or False."""
        now = self.sim.now
        state = self._state.get(key)
        if state is not None and now < state[0]:
            return False
        attempts = state[1] if state is not None else 0
        delay = min(self.max_delay, self.base * self.factor**attempts)
        if self.jitter > 0.0:
            if self._rng is None:
                self._rng = self.sim.rng.stream(self._stream_name)
            delay *= 1.0 + self.jitter * (2.0 * self._rng.random() - 1.0)
        self._state[key] = (now + delay, attempts + 1)
        return True

    def reset(self, key: Any) -> None:
        """The pressure behind ``key`` resolved: forget its backoff state."""
        self._state.pop(key, None)

    def prune(self, predicate: Callable[[Any], bool]) -> None:
        """Drop every key for which ``predicate`` holds (GC helper)."""
        for key in [k for k in self._state if predicate(k)]:
            del self._state[key]


__all__ = [
    "RequestPolicy",
    "RequestEnvelope",
    "ResponseEnvelope",
    "PeerScore",
    "Scoreboard",
    "RequestManager",
    "JitteredBackoff",
]
