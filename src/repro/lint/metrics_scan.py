"""ATL006 support: scan metric names, generate the registry and METRICS.md.

The registry (:mod:`repro.lint.metrics_registry`) is *generated* from the
code and committed: the lint rule validates every metric name literal
against it, and the CLI's stale check fails when the committed registry
and a fresh scan disagree in either direction.  Regenerating is therefore
a deliberate, reviewable act — the diff of the registry file IS the list
of added/removed metric names.

``docs/METRICS.md`` renders the same data as the authoritative index of
every counter/histogram/series name: kind, owning modules, and whether
the name is a ``FAULT_MATRIX.json`` row column.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Set, Tuple

from repro.lint.core import discover_files
from repro.lint.rules import iter_metric_name_literals

#: Metric names read in this module become matrix-row columns.
MATRIX_MODULE = "repro/faults/scenarios.py"

REGISTRY_HEADER = '''"""GENERATED metric-name registry — do not edit by hand.

Regenerate with ``python -m repro.lint --gen-metrics`` after adding or
removing a metric; ``python -m repro.lint --check`` fails while this file
and the code disagree.  Maps every counter/histogram/series name literal
used anywhere in ``src/repro`` to its kind, the modules that use it, and
whether it surfaces as a ``FAULT_MATRIX.json`` row column.
"""

METRICS = {
'''


@dataclass
class MetricInfo:
    name: str
    kind: str  # "counter" | "histogram" | "series"
    modules: List[str] = field(default_factory=list)
    matrix_column: bool = False


def scan_metrics(targets: Sequence[Path], root: Path) -> Dict[str, MetricInfo]:
    """Collect every literal metric name under ``targets``."""
    found: Dict[str, MetricInfo] = {}
    kinds: Dict[str, Set[str]] = {}
    for path in discover_files(targets):
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        try:
            relpath = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            relpath = path.as_posix()
        module_rel = relpath[4:] if relpath.startswith("src/") else relpath
        for _line, kind, name in iter_metric_name_literals(tree):
            info = found.get(name)
            if info is None:
                info = found[name] = MetricInfo(name=name, kind=kind)
                kinds[name] = set()
            kinds[name].add(kind)
            if module_rel not in info.modules:
                info.modules.append(module_rel)
            if module_rel == MATRIX_MODULE:
                info.matrix_column = True
    for name, info in found.items():
        # A name used as both .increment and .counter is one counter; a
        # genuine kind clash (counter vs histogram) keeps the first kind
        # and shows both module lists — the doc makes the clash visible.
        info.modules.sort()
        if kinds[name] == {"series"}:
            info.kind = "series"
        elif "histogram" in kinds[name] and "counter" not in kinds[name]:
            info.kind = "histogram"
        elif "counter" in kinds[name]:
            info.kind = "counter"
    return found


def render_registry(metrics: Dict[str, MetricInfo]) -> str:
    lines = [REGISTRY_HEADER]
    for name in sorted(metrics):
        info = metrics[name]
        modules = ", ".join(repr(m) for m in info.modules)
        lines.append(
            f"    {name!r}: {{\n"
            f"        \"kind\": {info.kind!r},\n"
            f"        \"modules\": ({modules}{',' if len(info.modules) == 1 else ''}),\n"
            f"        \"matrix_column\": {info.matrix_column},\n"
            f"    }},\n"
        )
    lines.append('}\n\n__all__ = ["METRICS"]\n')
    return "".join(lines)


DOC_HEADER = """# Metrics index

GENERATED from the metric-name registry — regenerate with
`python -m repro.lint --gen-metrics-doc` (CI fails if this file is stale).

Every counter, histogram and time-series name used anywhere in
`src/repro`, as validated by atumlint rule **ATL006**: a name literal not
in this index is a lint error (typo or unregistered addition), and an
index entry no longer used anywhere fails the stale-registry check.
Names marked as *matrix column* are read by `repro.faults.scenarios` into
`FAULT_MATRIX.json` rows.

| Metric | Kind | Matrix column | Used in |
|---|---|---|---|
"""


def render_doc(metrics: Dict[str, MetricInfo]) -> str:
    rows = []
    for name in sorted(metrics):
        info = metrics[name]
        modules = "<br>".join(f"`{m}`" for m in info.modules)
        matrix = "yes" if info.matrix_column else ""
        rows.append(f"| `{name}` | {info.kind} | {matrix} | {modules} |")
    counts: Dict[str, int] = {}
    for info in metrics.values():
        counts[info.kind] = counts.get(info.kind, 0) + 1
    summary = ", ".join(f"{counts[k]} {k}s" for k in sorted(counts))
    return DOC_HEADER + "\n".join(rows) + f"\n\n{len(metrics)} names ({summary}).\n"


def registry_diff(
    scanned: Dict[str, MetricInfo], registered: Dict[str, dict]
) -> Tuple[List[str], List[str]]:
    """``(missing_from_registry, orphaned_in_registry)`` name lists."""
    missing = sorted(name for name in scanned if name not in registered)
    orphaned = sorted(name for name in registered if name not in scanned)
    return missing, orphaned


__all__ = [
    "MetricInfo",
    "scan_metrics",
    "render_registry",
    "render_doc",
    "registry_diff",
    "MATRIX_MODULE",
]
