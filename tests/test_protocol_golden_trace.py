"""Golden-trace determinism tests for the protocol fast path (PR 2).

Two golden files captured by ``tests/golden/capture_protocol_golden.py``:

* ``golden_protocol_dissemination.json`` — structural round-by-round
  forwarding over a 3-cycle H-graph.  The ``flood`` trace was captured on the
  PRE-optimisation protocol path (commit 9967c2e) and must replay
  byte-identically on the cached-neighbour-table fast path.  The ``random``
  trace locks the NEW deterministic draw scheme (ordered neighbour list +
  ``rng.sample``): the pre-PR ``random_policy`` drew from a hash-salted set
  order and therefore had no byte-stable cross-process behaviour to record.
* ``golden_protocol_stack.json`` — the full ``(time, tag)`` event trace and
  figures of a protocol-stack broadcast scenario (group messenger fan-out +
  gossip forwarding + heartbeats on the real network/simulator), captured on
  the pre-PR path.  The batched-fan-out/slotted-delivery rewrite must change
  wall-clock speed and nothing else.

If a future PR intentionally changes protocol scheduling semantics,
regenerate the golden files with the capture script and document why in
CHANGES.md.
"""

import json
import os
import random

import pytest

from repro.overlay.gossip import dissemination_trace, flood_policy, random_policy
from repro.overlay.hgraph import HGraph
from repro.sim.protocol_perf import run_broadcast_scenario

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")
DISSEMINATION_PATH = os.path.join(GOLDEN_DIR, "golden_protocol_dissemination.json")
STACK_PATH = os.path.join(GOLDEN_DIR, "golden_protocol_stack.json")


@pytest.fixture(scope="module")
def dissemination_golden():
    with open(DISSEMINATION_PATH, "r", encoding="utf-8") as fh:
        return json.load(fh)


@pytest.fixture(scope="module")
def stack_golden():
    with open(STACK_PATH, "r", encoding="utf-8") as fh:
        return json.load(fh)


def build_golden_graph(golden) -> HGraph:
    return HGraph.random(
        [f"g{i}" for i in range(golden["vertices"])],
        golden["cycles"],
        random.Random(golden["graph_seed"]),
    )


def as_json_rounds(rounds):
    return [[[vertex, list(targets)] for vertex, targets in row] for row in rounds]


class TestDisseminationGolden:
    def test_flood_replays_pre_optimisation_trace(self, dissemination_golden):
        """The cached fast path reproduces the pre-PR flood forwarding exactly."""
        graph = build_golden_graph(dissemination_golden)
        rounds = dissemination_trace(
            graph,
            "g0",
            flood_policy,
            random.Random(17),
            message_id=dissemination_golden["message_id"],
        )
        assert as_json_rounds(rounds) == dissemination_golden["flood"]

    def test_random_policy_matches_deterministic_golden(self, dissemination_golden):
        """The new seeded random policy is byte-stable across processes."""
        graph = build_golden_graph(dissemination_golden)
        rounds = dissemination_trace(
            graph,
            "g0",
            random_policy(fanout=2),
            random.Random(17),
            message_id=dissemination_golden["message_id"],
        )
        assert as_json_rounds(rounds) == dissemination_golden["random"]

    def test_flood_trace_survives_mutation_and_restoration(self, dissemination_golden):
        """Cache invalidation: mutate the graph, undo it, replay the golden."""
        graph = build_golden_graph(dissemination_golden)
        # Warm the caches, splice a vertex in and out again, then replay.
        dissemination_trace(
            graph, "g0", flood_policy, random.Random(17),
            message_id=dissemination_golden["message_id"],
        )
        anchors = [graph.predecessor("g0", cycle) for cycle in range(graph.hc)]
        graph.insert_vertex("transient", anchors)
        graph.remove("transient")
        rounds = dissemination_trace(
            graph, "g0", flood_policy, random.Random(17),
            message_id=dissemination_golden["message_id"],
        )
        assert as_json_rounds(rounds) == dissemination_golden["flood"]


def run_stack_scenario(stack_golden, coalesced=False, with_trace=True):
    trace = [] if with_trace else None
    outcome = run_broadcast_scenario(
        seed=stack_golden["seed"],
        groups=stack_golden["groups"],
        group_size=stack_golden["group_size"],
        hc=stack_golden["hc"],
        broadcasts=stack_golden["broadcasts"],
        policy="flood",
        horizon=stack_golden["horizon"],
        coalesced_fanout=coalesced,
        trace=trace,
    )
    return trace, outcome


def stack_figures(stack_golden, outcome):
    return {key: outcome[key] for key in stack_golden["figures"]}


class TestStackGolden:
    def test_matches_pre_optimisation_stack_trace(self, stack_golden):
        trace, outcome = run_stack_scenario(stack_golden)
        assert len(trace) == stack_golden["trace_length"]
        assert [[t, tag] for t, tag in trace] == stack_golden["trace"]
        assert stack_figures(stack_golden, outcome) == stack_golden["figures"]

    def test_two_runs_are_byte_identical(self, stack_golden):
        trace_a, outcome_a = run_stack_scenario(stack_golden)
        trace_b, outcome_b = run_stack_scenario(stack_golden)
        assert trace_a == trace_b
        assert outcome_a["delivery_latency_samples"] == outcome_b["delivery_latency_samples"]
        assert stack_figures(stack_golden, outcome_a) == stack_figures(stack_golden, outcome_b)

    def test_coalesced_fanout_changes_only_event_count(self, stack_golden):
        """Batched fan-out delivery: same outcomes, fewer simulation events."""
        _, plain = run_stack_scenario(stack_golden, with_trace=False)
        _, coalesced = run_stack_scenario(stack_golden, coalesced=True, with_trace=False)
        assert coalesced["processed_events"] < plain["processed_events"]
        for key in stack_golden["figures"]:
            if key == "processed_events":
                continue
            assert coalesced[key] == plain[key], key
        assert coalesced["delivery_latency_samples"] == plain["delivery_latency_samples"]
