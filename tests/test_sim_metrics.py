"""Unit tests for metrics primitives."""

import math

import pytest

from repro.sim.metrics import Histogram, MetricsRegistry, TimeSeries


class TestHistogram:
    def test_mean_and_extremes(self):
        histogram = Histogram()
        for value in [1.0, 2.0, 3.0, 4.0]:
            histogram.record(value)
        assert histogram.mean == pytest.approx(2.5)
        assert histogram.minimum == 1.0
        assert histogram.maximum == 4.0
        assert histogram.count == 4

    def test_percentiles(self):
        histogram = Histogram()
        for value in range(1, 101):
            histogram.record(float(value))
        assert histogram.percentile(50) == pytest.approx(50.0)
        assert histogram.percentile(99) == pytest.approx(99.0)
        assert histogram.percentile(100) == pytest.approx(100.0)

    def test_percentile_out_of_range(self):
        histogram = Histogram()
        histogram.record(1.0)
        with pytest.raises(ValueError):
            histogram.percentile(150)

    def test_empty_histogram_returns_nan(self):
        histogram = Histogram()
        assert math.isnan(histogram.mean)
        assert math.isnan(histogram.percentile(50))

    def test_cdf_is_monotone_and_ends_at_one(self):
        histogram = Histogram()
        for value in [3.0, 1.0, 2.0]:
            histogram.record(value)
        cdf = histogram.cdf()
        values = [v for v, _ in cdf]
        fractions = [f for _, f in cdf]
        assert values == sorted(values)
        assert fractions[-1] == pytest.approx(1.0)
        assert all(f2 >= f1 for f1, f2 in zip(fractions, fractions[1:]))


class TestTimeSeries:
    def test_value_at_step_function(self):
        series = TimeSeries()
        series.record(0.0, 1.0)
        series.record(10.0, 2.0)
        assert series.value_at(5.0) == 1.0
        assert series.value_at(10.0) == 2.0

    def test_value_before_first_sample_raises(self):
        series = TimeSeries()
        series.record(5.0, 1.0)
        with pytest.raises(ValueError):
            series.value_at(1.0)

    def test_last(self):
        series = TimeSeries()
        with pytest.raises(ValueError):
            series.last()
        series.record(1.0, 10.0)
        series.record(2.0, 20.0)
        assert series.last() == (2.0, 20.0)


class TestMetricsRegistry:
    def test_counters(self):
        metrics = MetricsRegistry()
        metrics.increment("x")
        metrics.increment("x", 2.5)
        assert metrics.counter("x") == pytest.approx(3.5)
        assert metrics.counter("missing") == 0.0

    def test_observe_and_snapshot(self):
        metrics = MetricsRegistry()
        metrics.observe("lat", 1.0)
        metrics.observe("lat", 3.0)
        snapshot = metrics.snapshot()
        assert snapshot["lat.mean"] == pytest.approx(2.0)
        assert snapshot["lat.count"] == 2.0

    def test_merge_histograms(self):
        h1 = Histogram(samples=[1.0, 2.0])
        h2 = Histogram(samples=[3.0])
        merged = MetricsRegistry.merge_histograms([h1, h2])
        assert merged.count == 3
