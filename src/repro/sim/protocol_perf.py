"""Protocol-layer performance measurement: broadcast msgs/sec above the kernel.

Where :mod:`repro.sim.perf` measures the discrete-event kernel itself, this
module measures the *protocol stack* built on top of it — the layers that
dominate the figure benchmarks now that the kernel is fast:

* ``broadcast`` — a static overlay of vgroups gossiping broadcasts along the
  H-graph through real :class:`~repro.group.messages.GroupMessenger` fan-out,
  with a background heartbeat layer.  Every hop exercises the group-message
  send/accept path, the gossip forwarding policies and the H-graph neighbour
  queries.  The headline number is delivered protocol messages per wall-clock
  second.
* ``churn`` — the membership engine under sustained joins and leaves
  (agreement, random walks, shuffling, splits and merges at vgroup
  granularity).  The headline number is completed membership operations per
  wall-clock second.

Workloads are seeded and deterministic in their *event structure*; only the
wall clock varies between hosts.  ``BASELINE_PROTOCOL_RATES`` records the
throughput of the pre-optimisation protocol layer (per-destination envelope
construction, per-hop neighbour rebuilds, linear membership scans) measured
at the PR-1 commit on the reference container; ``benchmarks/
bench_protocol_speed.py`` asserts the current stack beats it by
``TARGET_PROTOCOL_SPEEDUP`` on the ``broadcast`` scenario.

Shard entry points (:func:`broadcast_shard`, :func:`churn_shard`) return
plain-dict metric snapshots with no wall-clock component, so
:mod:`repro.sim.runpar` can fan seeded configurations across worker processes
and merge the results deterministically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.group.messages import GroupMessageEnvelope, GroupMessenger, NodeBinding
from repro.group.heartbeat import Heartbeat, HeartbeatConfig, HeartbeatMonitor
from repro.group.vgroup import VGroupView
from repro.net.latency import FixedLatency
from repro.net.network import Network, NetworkConfig
from repro.overlay.gossip import ForwardPolicy, cycles_policy, flood_policy, random_policy
from repro.overlay.hgraph import HGraph
from repro.overlay.membership import MembershipConfig, MembershipEngine, MembershipError
from repro.sim.actor import Actor
from repro.sim.rng import derive_seed, named_stream
from repro.sim.simulator import Simulator

#: Pre-PR protocol-layer throughput, measured at commit 9967c2e (PR-1 protocol
#: code) with this same module's workloads on the reference container, using
#: ``BENCH_BROADCAST_CONFIG`` / ``BENCH_CHURN_CONFIG`` below.
BASELINE_PROTOCOL_RATES: Dict[str, float] = {
    "broadcast_msgs_per_sec": 116236.0,
    "churn_ops_per_sec": 2529.0,
}

#: The speedup the full protocol fast path (batched fan-out delivery) is held
#: to on the broadcast scenario.
TARGET_PROTOCOL_SPEEDUP = 3.0

#: Conservative floor for the per-message-event variant of the same scenario
#: (measured ~2.7x on the reference container; the floor leaves noise room).
TARGET_PROTOCOL_SPEEDUP_UNCOALESCED = 2.0

#: Floor for the membership-churn scenario.
TARGET_CHURN_SPEEDUP = 1.2

#: The scenario configurations the recorded baselines were measured with.
BENCH_BROADCAST_CONFIG: Dict[str, Any] = {
    "groups": 16,
    "group_size": 10,
    "hc": 3,
    "broadcasts": 10,
    "policy": "flood",
    "heartbeat_period": None,
    "randomized_send_order": False,
}
BENCH_CHURN_CONFIG: Dict[str, Any] = {
    "initial_nodes": 420,
    "operations": 260,
    "op_interval": 0.8,
}


@dataclass(frozen=True)
class BroadcastRecord:
    """The application payload gossiped by the broadcast workload."""

    bcast_id: str
    origin_group: str
    body: str


class GossipStackNode(Actor):
    """A protocol-stack node: group messenger + gossip forwarding + heartbeats.

    This is the broadcast data plane of an Atum node without the SMR phase:
    accepted gossip group messages are re-forwarded along the H-graph to the
    neighbour vgroups selected by the forwarding policy, exactly as in
    :meth:`repro.core.node.AtumNode._forward`.  Forward-target selection is
    derived deterministically from ``(bcast_id, group_id)`` so every member
    of a vgroup picks the same targets, as the group-message abstraction
    requires.
    """

    def __init__(
        self,
        sim: Simulator,
        address: str,
        view: VGroupView,
        graph: HGraph,
        views: Dict[str, VGroupView],
        policy: ForwardPolicy,
        policy_needs_rng: bool,
        payload_bytes: int = 512,
    ) -> None:
        super().__init__(sim, address)
        self.view = view
        self.graph = graph
        self.views = views
        self.policy = policy
        self.policy_needs_rng = policy_needs_rng
        self.payload_bytes = payload_bytes
        self.network: Optional[Network] = None
        self.delivered: Dict[str, float] = {}
        self.heartbeats: Optional[HeartbeatMonitor] = None
        self.messenger: Optional[GroupMessenger] = None
        self._gm_handle: Optional[Callable[[GroupMessageEnvelope, str], None]] = None

    def attach(self, network: Network, heartbeat_period: Optional[float]) -> None:
        self.network = network
        self.messenger = GroupMessenger(
            binding=NodeBinding(address=self.address, network=network, sim=self.sim),
            own_view_fn=lambda: self.view,
            on_accept=self._on_accept,
            payload_bytes=self.payload_bytes,
        )
        self._gm_handle = self.messenger.handle
        if heartbeat_period is not None:
            # ``send_one`` is the burst-pipeline single send; fall back to the
            # classic ``send`` when benchmarking against code that predates it
            # (the recorded pre-PR baseline runs this very module).
            send_single = getattr(network, "send_one", network.send)
            self.heartbeats = HeartbeatMonitor(
                sim=self.sim,
                address=self.address,
                group_id_fn=lambda: self.view.group_id,
                peers_fn=lambda: self.view.members,
                send_fn=lambda peer, hb: send_single(self.address, peer, hb, 64),
                suspect_fn=lambda peer: None,
                config=HeartbeatConfig(period=heartbeat_period),
            )
            self.heartbeats.start()

    # --------------------------------------------------------------- protocol

    def on_message(self, payload: Any, sender: str) -> None:
        if payload.__class__ is GroupMessageEnvelope:
            self._gm_handle(payload, sender)
            return
        if payload.__class__ is Heartbeat:
            if self.heartbeats is not None:
                self.heartbeats.observe(payload)
            return

    def originate(self, record: BroadcastRecord) -> None:
        """Deliver ``record`` locally and start forwarding it (origin vgroup)."""
        self._deliver_and_forward(record, exclude_group=None)

    def _on_accept(self, kind: str, payload: Any, source_group: str, gm_id: str) -> None:
        if kind == "gossip" and isinstance(payload, BroadcastRecord):
            self._deliver_and_forward(payload, exclude_group=source_group)

    def _deliver_and_forward(
        self, record: BroadcastRecord, exclude_group: Optional[str]
    ) -> None:
        if record.bcast_id in self.delivered:
            return
        self.delivered[record.bcast_id] = self.sim.now
        counters = self.sim.metrics.counters
        counters["stack.deliveries"] += 1.0
        own_group = self.view.group_id
        rng = None
        if self.policy_needs_rng:
            # Group-consistent determinism: every member of the vgroup derives
            # the same stream from (bcast_id, group_id), so they all pick the
            # same forward set and their shares aggregate into one accepted
            # group message per (bcast, source, target).
            rng = named_stream(f"{record.bcast_id}:{own_group}")
        targets = self.policy(self.graph, own_group, record.bcast_id, rng)
        for target_group in targets:
            if target_group == own_group or target_group == exclude_group:
                continue
            target_view = self.views.get(target_group)
            if target_view is None:
                continue
            gm_id = f"gossip:{record.bcast_id}:{own_group}->{target_group}"
            self.messenger.send(
                target_view,
                "gossip",
                record,
                gm_id=gm_id,
                payload_bytes=self.payload_bytes,
            )
        counters["stack.forwards"] += 1.0


def build_broadcast_stack(
    seed: int,
    groups: int = 24,
    group_size: int = 6,
    hc: int = 3,
    policy: str = "flood",
    heartbeat_period: Optional[float] = 5.0,
    payload_bytes: int = 512,
    randomized_send_order: bool = True,
    coalesced_fanout: bool = False,
) -> Tuple[Simulator, Dict[str, GossipStackNode], Dict[str, VGroupView], HGraph]:
    """Build a static overlay of ``groups`` vgroups wired for gossip."""
    sim = Simulator(seed=seed)
    config_kwargs = {"randomized_send_order": randomized_send_order}
    # The coalesced-delivery knob only exists on the optimised network; the
    # recorded pre-PR baseline runs this same module against code without it.
    if coalesced_fanout:
        config_kwargs["coalesced_fanout_delivery"] = True
    network = Network(
        sim,
        latency_model=FixedLatency(0.002),
        config=NetworkConfig(**config_kwargs),
    )
    overlay_rng = sim.rng.stream("protocol-perf-overlay")
    group_ids = [f"vg{g}" for g in range(groups)]
    graph = HGraph.random(group_ids, hc, overlay_rng)
    views: Dict[str, VGroupView] = {}
    for index, group_id in enumerate(group_ids):
        members = [f"n{index}-{m}" for m in range(group_size)]
        views[group_id] = VGroupView.create(group_id, members)

    if policy == "flood":
        forward_policy, needs_rng = flood_policy, False
    elif policy == "cycles":
        forward_policy, needs_rng = cycles_policy(2), False
    elif policy == "random":
        forward_policy, needs_rng = random_policy(fanout=2), True
    else:
        raise ValueError(f"unknown workload policy {policy!r}")

    nodes: Dict[str, GossipStackNode] = {}
    for group_id in group_ids:
        view = views[group_id]
        for address in view.members:
            node = GossipStackNode(
                sim=sim,
                address=address,
                view=view,
                graph=graph,
                views=views,
                policy=forward_policy,
                policy_needs_rng=needs_rng,
                payload_bytes=payload_bytes,
            )
            node.attach(network, heartbeat_period)
            network.register(node)
            nodes[address] = node
    return sim, nodes, views, graph


def run_broadcast_scenario(
    seed: int = 7,
    groups: int = 24,
    group_size: int = 6,
    hc: int = 3,
    broadcasts: int = 6,
    policy: str = "flood",
    heartbeat_period: Optional[float] = 5.0,
    horizon: float = 60.0,
    randomized_send_order: bool = True,
    coalesced_fanout: bool = False,
    trace: Optional[List[Tuple[float, Optional[str]]]] = None,
) -> Dict[str, Any]:
    """Run one seeded broadcast-dissemination scenario to completion.

    Returns the deterministic outcome (delivered message counts, per-node
    delivery fractions) plus the host wall-clock time of the run.
    """
    sim, nodes, views, _graph = build_broadcast_stack(
        seed,
        groups,
        group_size,
        hc,
        policy,
        heartbeat_period,
        randomized_send_order=randomized_send_order,
        coalesced_fanout=coalesced_fanout,
    )
    group_ids = sorted(views)
    for index in range(broadcasts):
        origin_group = group_ids[index % len(group_ids)]
        origin_view = views[origin_group]
        record = BroadcastRecord(
            bcast_id=f"bc-{seed}-{index}",
            origin_group=origin_group,
            body="x" * 128,
        )
        when = 0.25 * index

        def fire(record=record, origin_view=origin_view) -> None:
            for address in origin_view.members:
                nodes[address].originate(record)

        sim.schedule(when, fire, tag="stack.broadcast")

    start = time.perf_counter()  # atumlint: allow[ATL002] benchmark wall-clock: measures real msgs/s, never sim time
    sim.run(until=horizon, trace=trace)
    elapsed = time.perf_counter() - start  # atumlint: allow[ATL002] benchmark wall-clock: measures real msgs/s, never sim time

    metrics = sim.metrics
    total_nodes = len(nodes)
    delivered_total = sum(len(node.delivered) for node in nodes.values())
    return {
        "seed": seed,
        "processed_events": sim.processed_events,
        "messages_delivered": metrics.counter("net.messages_delivered"),
        "messages_sent": metrics.counter("net.messages_sent"),
        "shares_sent": metrics.counter("group.shares_sent"),
        "group_accepted": metrics.counter("group.messages_accepted"),
        "deliveries": metrics.counter("stack.deliveries"),
        "delivery_fraction": delivered_total / (total_nodes * broadcasts),
        "delivery_latency_samples": list(
            metrics.histogram("net.delivery_latency").samples
        ),
        "seconds": elapsed,
    }


def measure_broadcast(repeats: int = 3, **kwargs: Any) -> Dict[str, float]:
    """Best-of-``repeats`` broadcast throughput in delivered msgs/sec."""
    best: Optional[Dict[str, float]] = None
    for _ in range(repeats):
        outcome = run_broadcast_scenario(**kwargs)
        rate = outcome["messages_delivered"] / outcome["seconds"]
        entry = {
            "messages_delivered": outcome["messages_delivered"],
            "seconds": outcome["seconds"],
            "msgs_per_sec": rate,
            "delivery_fraction": outcome["delivery_fraction"],
        }
        if best is None or entry["msgs_per_sec"] > best["msgs_per_sec"]:
            best = entry
    assert best is not None
    return best


# ------------------------------------------------------------------- churn


def run_churn_scenario(
    seed: int = 11,
    initial_nodes: int = 420,
    operations: int = 260,
    op_interval: float = 0.8,
) -> Dict[str, Any]:
    """Run the membership engine under sustained churn; returns the outcome."""
    sim = Simulator(seed=seed)
    engine = MembershipEngine(sim=sim, config=MembershipConfig(hc=3, rwl=8, gmax=14, gmin=7))
    addresses = [f"m{i}" for i in range(initial_nodes)]
    engine.build_static(addresses)
    rng = sim.rng.stream("protocol-perf-churn")
    state = {"next_id": initial_nodes, "ops": 0}

    def churn_tick() -> None:
        if state["ops"] >= operations:
            return
        state["ops"] += 1
        sim.schedule(op_interval, churn_tick, tag="churn.tick")
        members = sorted(engine.node_group)
        # Only MembershipError (victim vanished / id collision under a
        # concurrent operation) is an expected, countable outcome here; a
        # blanket except would silently convert engine bugs into "fewer
        # ops", masking real regressions.  The benchmark asserts the
        # swallowed-error counter stays at zero.
        if members and rng.random() < 0.5:
            victim = members[rng.randrange(len(members))]
            try:
                engine.leave(victim)
            except MembershipError:
                sim.metrics.increment("perf.swallowed_errors")
                return
        else:
            state["next_id"] += 1
            try:
                engine.join(f"m{state['next_id']}")
            except MembershipError:
                sim.metrics.increment("perf.swallowed_errors")
                return

    sim.schedule(op_interval, churn_tick, tag="churn.tick")
    start = time.perf_counter()  # atumlint: allow[ATL002] benchmark wall-clock: measures real msgs/s, never sim time
    sim.run_until_idle()
    elapsed = time.perf_counter() - start  # atumlint: allow[ATL002] benchmark wall-clock: measures real msgs/s, never sim time
    metrics = sim.metrics
    completed = (
        metrics.counter("membership.joins_completed")
        + metrics.counter("membership.leaves_completed")
    )
    return {
        "seed": seed,
        "processed_events": sim.processed_events,
        "completed_operations": completed,
        "swallowed_errors": metrics.counter("perf.swallowed_errors"),
        "exchanges_completed": metrics.counter("membership.exchanges_completed"),
        "splits": metrics.counter("membership.splits"),
        "merges": metrics.counter("membership.merges"),
        "system_size": engine.system_size,
        "join_latency_samples": list(
            metrics.histogram("membership.join_latency").samples
        ),
        "seconds": elapsed,
    }


def measure_churn(repeats: int = 3, **kwargs: Any) -> Dict[str, float]:
    """Best-of-``repeats`` membership throughput in completed ops/sec."""
    best: Optional[Dict[str, float]] = None
    for _ in range(repeats):
        outcome = run_churn_scenario(**kwargs)
        rate = outcome["completed_operations"] / outcome["seconds"]
        entry = {
            "completed_operations": outcome["completed_operations"],
            "swallowed_errors": outcome["swallowed_errors"],
            "seconds": outcome["seconds"],
            "ops_per_sec": rate,
        }
        if best is None or entry["ops_per_sec"] > best["ops_per_sec"]:
            best = entry
    assert best is not None
    return best


# ------------------------------------------------------------------- shards


def broadcast_shard(seed: int, **kwargs: Any) -> Dict[str, Any]:
    """Deterministic (wall-clock-free) broadcast shard for :mod:`repro.sim.runpar`."""
    outcome = run_broadcast_scenario(seed=seed, **kwargs)
    return {
        "counters": {
            "messages_delivered": outcome["messages_delivered"],
            "messages_sent": outcome["messages_sent"],
            "group_accepted": outcome["group_accepted"],
            "deliveries": outcome["deliveries"],
            "processed_events": float(outcome["processed_events"]),
        },
        "histograms": {
            "net.delivery_latency": outcome["delivery_latency_samples"],
        },
    }


def churn_shard(seed: int, **kwargs: Any) -> Dict[str, Any]:
    """Deterministic (wall-clock-free) churn shard for :mod:`repro.sim.runpar`."""
    outcome = run_churn_scenario(seed=seed, **kwargs)
    return {
        "counters": {
            "completed_operations": outcome["completed_operations"],
            "swallowed_errors": outcome["swallowed_errors"],
            "exchanges_completed": outcome["exchanges_completed"],
            "splits": outcome["splits"],
            "merges": outcome["merges"],
            "processed_events": float(outcome["processed_events"]),
        },
        "histograms": {
            "membership.join_latency": outcome["join_latency_samples"],
            # Gauge, not a counter: summing final system sizes across
            # independent shards is meaningless, so expose the per-shard
            # distribution instead.
            "membership.system_size": [float(outcome["system_size"])],
        },
    }


# ---------------------------------------------------------------- benchmark


def run_protocol_benchmark(repeats: int = 3) -> Dict[str, Any]:
    """Measure the protocol scenarios and compare against the recorded baseline.

    Three measurements share ``BENCH_BROADCAST_CONFIG`` / ``BENCH_CHURN_CONFIG``
    (the configurations the pre-PR baselines were recorded with):

    * ``broadcast`` — per-message delivery events, same event granularity as
      the pre-PR path;
    * ``broadcast_coalesced`` — the full fast path with batched fan-out
      delivery (``NetworkConfig.coalesced_fanout_delivery``), the
      ≥``TARGET_PROTOCOL_SPEEDUP`` headline;
    * ``churn`` — membership operations per second.
    """
    import sys

    broadcast = measure_broadcast(repeats=repeats, **BENCH_BROADCAST_CONFIG)
    coalesced = measure_broadcast(
        repeats=repeats, coalesced_fanout=True, **BENCH_BROADCAST_CONFIG
    )
    churn = measure_churn(repeats=repeats, **BENCH_CHURN_CONFIG)
    broadcast_base = BASELINE_PROTOCOL_RATES["broadcast_msgs_per_sec"]
    churn_base = BASELINE_PROTOCOL_RATES["churn_ops_per_sec"]
    return {
        "python": sys.version.split()[0],
        "scenarios": {
            "broadcast": {
                "baseline_msgs_per_sec": broadcast_base,
                "current_msgs_per_sec": round(broadcast["msgs_per_sec"], 1),
                "speedup": round(broadcast["msgs_per_sec"] / broadcast_base, 3),
                "messages_delivered": broadcast["messages_delivered"],
                "seconds": round(broadcast["seconds"], 4),
            },
            "broadcast_coalesced": {
                "baseline_msgs_per_sec": broadcast_base,
                "current_msgs_per_sec": round(coalesced["msgs_per_sec"], 1),
                "speedup": round(coalesced["msgs_per_sec"] / broadcast_base, 3),
                "messages_delivered": coalesced["messages_delivered"],
                "seconds": round(coalesced["seconds"], 4),
            },
            "churn": {
                "baseline_ops_per_sec": churn_base,
                "current_ops_per_sec": round(churn["ops_per_sec"], 1),
                "speedup": round(churn["ops_per_sec"] / churn_base, 3),
                "completed_operations": churn["completed_operations"],
                "swallowed_errors": churn["swallowed_errors"],
                "seconds": round(churn["seconds"], 4),
            },
        },
        "target_speedup": TARGET_PROTOCOL_SPEEDUP,
        "target_speedup_uncoalesced": TARGET_PROTOCOL_SPEEDUP_UNCOALESCED,
        "target_churn_speedup": TARGET_CHURN_SPEEDUP,
    }


def write_report(path: str = "BENCH_protocol.json", repeats: int = 3) -> Dict[str, Any]:
    """Run the protocol benchmark and persist the report to ``path``."""
    import json

    report = run_protocol_benchmark(repeats=repeats)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return report


def main() -> None:  # pragma: no cover - CLI convenience
    import json

    print(json.dumps(write_report(), indent=2, sort_keys=True))


if __name__ == "__main__":  # pragma: no cover
    main()


__all__ = [
    "BASELINE_PROTOCOL_RATES",
    "TARGET_PROTOCOL_SPEEDUP",
    "TARGET_PROTOCOL_SPEEDUP_UNCOALESCED",
    "TARGET_CHURN_SPEEDUP",
    "BENCH_BROADCAST_CONFIG",
    "BENCH_CHURN_CONFIG",
    "run_protocol_benchmark",
    "write_report",
    "BroadcastRecord",
    "GossipStackNode",
    "build_broadcast_stack",
    "run_broadcast_scenario",
    "run_churn_scenario",
    "measure_broadcast",
    "measure_churn",
    "broadcast_shard",
    "churn_shard",
]
