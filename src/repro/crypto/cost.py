"""Simulated CPU cost of cryptographic operations.

EC2 micro instances (the paper's node type) have weak CPUs; signature
verification in long certificate chains is expensive enough that the paper's
synchronous implementation avoids certificates altogether.  The cost model
lets protocols charge that CPU time to the simulated clock so the trade-off
is visible in experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.digest import (
    DIGEST_MODE_COST_ONLY,
    DIGEST_MODE_REAL,
    get_digest_mode,
    set_digest_mode,
)


@dataclass
class CryptoCostModel:
    """Per-operation CPU costs in seconds of simulated time.

    Defaults approximate a low-end VM: ~0.2 ms per signature generation,
    ~0.25 ms per verification, ~5 microseconds per hashed KB.

    The *simulated* cost charged to the clock is independent of the *host*
    cost of computing digests: timing-only benchmarks switch the process to
    ``cost_only`` digest mode (see :meth:`install_cost_only_digests`), which
    skips real SHA-256 while this model keeps charging the simulated time —
    the figures stay identical, the wall clock drops.
    """

    sign_seconds: float = 0.0002
    verify_seconds: float = 0.00025
    mac_seconds: float = 0.00002
    hash_seconds_per_kb: float = 0.000005

    @staticmethod
    def install_cost_only_digests() -> None:
        """Make :func:`repro.crypto.digest.digest_object` skip real hashing."""
        set_digest_mode(DIGEST_MODE_COST_ONLY)

    @staticmethod
    def install_real_digests() -> None:
        """Restore real SHA-256 digests."""
        set_digest_mode(DIGEST_MODE_REAL)

    @staticmethod
    def digests_are_cost_only() -> bool:
        return get_digest_mode() == DIGEST_MODE_COST_ONLY

    def sign_cost(self, count: int = 1) -> float:
        return self.sign_seconds * count

    def verify_cost(self, count: int = 1) -> float:
        return self.verify_seconds * count

    def mac_cost(self, count: int = 1) -> float:
        return self.mac_seconds * count

    def hash_cost(self, size_bytes: int, threads: int = 1) -> float:
        """Hashing cost for ``size_bytes``; multithreading divides the cost.

        AShare exploits chunked transfers to hash chunks in parallel
        (paper section 4.2.2); ``threads`` models that speed-up.
        """
        effective_threads = max(1, threads)
        kb = size_bytes / 1024.0
        return self.hash_seconds_per_kb * kb / effective_threads

    def certificate_chain_verify_cost(self, chain_length: int, quorum: int) -> float:
        """Cost of verifying a random-walk certificate chain."""
        return self.verify_cost(chain_length * quorum)


__all__ = ["CryptoCostModel"]
