"""Tests for AShare, the file sharing service."""

import pytest

from repro.apps.ashare import AShareCluster, FileRecord, MetadataIndex, chunk_digest
from repro.apps.transfer import TransferModel
from repro.core.cluster import AtumCluster
from repro.core.config import AtumParameters

MB = 1024 * 1024


def small_params():
    return AtumParameters(hc=3, rwl=5, gmax=6, gmin=3, round_duration=0.5, expected_system_size=30)


def make_ashare(n=18, byzantine=(), rho=3, feedback=True, seed=0):
    atum = AtumCluster(small_params(), seed=seed)
    addresses = [f"n{i}" for i in range(n)]
    atum.build_static(addresses, byzantine=byzantine)
    share = AShareCluster(atum, rho=rho, replication_feedback=feedback)
    return atum, share, addresses


class TestMetadataIndex:
    def _record(self, owner="alice", name="movie", replicas=()):
        return FileRecord(
            owner=owner,
            name=name,
            size_bytes=10 * MB,
            num_chunks=10,
            chunk_digests=tuple(chunk_digest(owner, name, i) for i in range(10)),
            replicas=set(replicas),
        )

    def test_put_get_delete(self):
        index = MetadataIndex()
        index.put(self._record())
        assert index.get("alice", "movie") is not None
        index.delete("alice", "movie")
        assert index.get("alice", "movie") is None

    def test_replica_tracking(self):
        index = MetadataIndex()
        index.put(self._record(replicas=["alice"]))
        index.add_replica("alice", "movie", "bob")
        assert index.replica_count("alice", "movie") == 2
        index.remove_replica_holder("bob")
        assert index.replica_count("alice", "movie") == 1

    def test_search_matches_owner_and_name(self):
        index = MetadataIndex()
        index.put(self._record(owner="alice", name="holiday-video"))
        index.put(self._record(owner="bob", name="report"))
        assert len(index.search("holiday")) == 1
        assert len(index.search("ALICE")) == 1
        assert len(index.search("nothing")) == 0

    def test_chunk_sizes_sum_to_file_size(self):
        record = self._record()
        assert sum(record.chunk_sizes()) == record.size_bytes
        assert len(record.chunk_sizes()) == record.num_chunks

    def test_corrupted_digest_differs(self):
        assert chunk_digest("a", "f", 0) != chunk_digest("a", "f", 0, corrupted=True)


class TestTransferModel:
    def test_single_stream_latency_per_mb_decreases_with_size(self):
        model = TransferModel()
        small = model.latency_per_mb(model.single_stream_time(2 * MB), 2 * MB)
        large = model.latency_per_mb(model.single_stream_time(1024 * MB), 1024 * MB)
        assert large < small

    def test_parallel_chunked_read_faster_for_large_files(self):
        model = TransferModel()
        chunks = [64 * MB] * 10
        serial = model.chunked_read_time(chunks, parallel_connections=1)
        parallel = model.chunked_read_time(chunks, parallel_connections=2)
        assert parallel < serial

    def test_parallelism_capped_by_downlink(self):
        # With digest verification disabled, the transfer itself is bounded by
        # the reader's downlink: once it saturates (2 connections at 4 MB/s on
        # an 8 MB/s downlink), adding connections cannot speed up the read.
        model = TransferModel(
            per_connection_bandwidth=4_000_000,
            downlink_bandwidth=8_000_000,
            verify_digests=False,
        )
        chunks = [64 * MB] * 8
        two = model.chunked_read_time(chunks, parallel_connections=2)
        eight = model.chunked_read_time(chunks, parallel_connections=8)
        assert eight == pytest.approx(two, rel=0.05)

    def test_corrupted_chunks_add_retry_time(self):
        model = TransferModel()
        chunks = [1 * MB] * 10
        clean = model.chunked_read_time(chunks, parallel_connections=5)
        corrupted = model.chunked_read_time(chunks, parallel_connections=5, corrupted_chunks=5)
        assert corrupted > clean

    def test_empty_chunk_list(self):
        assert TransferModel().chunked_read_time([], 4) == 0.0


class TestPutGetSearch:
    def test_put_propagates_metadata_to_all_nodes(self):
        atum, share, addresses = make_ashare(feedback=False)
        share.put("n0", "dataset", size_bytes=20 * MB, num_chunks=10)
        atum.run(until=60.0)
        for address in addresses:
            record = share.index_of(address).get("n0", "dataset")
            assert record is not None
            assert record.num_chunks == 10

    def test_get_returns_latency_and_records_metric(self):
        atum, share, addresses = make_ashare(feedback=False)
        share.put("n0", "dataset", size_bytes=20 * MB, num_chunks=10)
        atum.run(until=60.0)
        latency = share.get("n5", "n0", "dataset")
        assert latency is not None and latency > 0
        assert atum.sim.metrics.histogram("ashare.get_latency").count == 1

    def test_get_unknown_file_returns_none(self):
        atum, share, addresses = make_ashare(feedback=False)
        assert share.get("n1", "n0", "ghost") is None

    def test_search_finds_files_by_substring(self):
        atum, share, addresses = make_ashare(feedback=False)
        share.put("n0", "vacation-photos", size_bytes=5 * MB, num_chunks=5)
        share.put("n1", "tax-report", size_bytes=1 * MB, num_chunks=1)
        atum.run(until=60.0)
        results = share.search("n7", "vacation")
        assert len(results) == 1 and results[0].owner == "n0"

    def test_delete_removes_metadata_everywhere(self):
        atum, share, addresses = make_ashare(feedback=False)
        share.put("n0", "temp", size_bytes=2 * MB, num_chunks=2)
        atum.run(until=60.0)
        share.delete("n0", "temp")
        atum.run(until=120.0)
        assert all(share.index_of(a).get("n0", "temp") is None for a in addresses)

    def test_replication_feedback_reaches_rho_replicas(self):
        atum, share, addresses = make_ashare(n=15, rho=4, feedback=True)
        share.put("n0", "popular", size_bytes=5 * MB, num_chunks=5)
        atum.run(until=400.0)
        count = share.replica_count("n0", "popular", as_seen_by="n3")
        assert count >= 4

    def test_seed_replicas_helper(self):
        atum, share, addresses = make_ashare(feedback=False)
        share.put("n0", "seeded", size_bytes=10 * MB, num_chunks=10)
        atum.run(until=60.0)
        share.seed_replicas("n0", "seeded", ["n1", "n2", "n3"])
        assert share.replica_count("n0", "seeded", as_seen_by="n9") == 4

    def test_seed_replicas_without_put_raises(self):
        atum, share, addresses = make_ashare(feedback=False)
        with pytest.raises(KeyError):
            share.seed_replicas("n0", "never-put", ["n1"])


class TestByzantineReplicas:
    def test_corrupted_replicas_slow_down_reads(self):
        # Byzantine holders corrupt their replicas; the read re-pulls those
        # chunks from correct replicas, increasing latency (Figures 10-11).
        atum, share, addresses = make_ashare(n=20, byzantine=["n1", "n2"], feedback=False, seed=3)
        share.put("n0", "data", size_bytes=10 * MB, num_chunks=10)
        atum.run(until=60.0)
        share.seed_replicas("n0", "data", ["n3", "n4"])
        clean_latency = share.get("n10", "n0", "data")

        share.put("n0", "poisoned", size_bytes=10 * MB, num_chunks=10)
        atum.run(until=atum.sim.now + 60.0)
        share.seed_replicas("n0", "poisoned", ["n1", "n2"])  # corrupted holders
        dirty_latency = share.get("n10", "n0", "poisoned")
        assert dirty_latency > clean_latency

    def test_ideal_configuration_chunks_equal_replicas(self):
        # With as many replicas as chunks, corruption of a minority costs less
        # than with few replicas (the balance discussed in section 6.2).
        atum, share, addresses = make_ashare(n=24, byzantine=["n1"], feedback=False, seed=4)
        share.put("n0", "file", size_bytes=10 * MB, num_chunks=10)
        atum.run(until=60.0)
        share.seed_replicas("n0", "file", ["n1", "n2"])
        few_replicas = share.get("n20", "n0", "file")
        share.seed_replicas("n0", "file", [f"n{i}" for i in range(2, 12)])
        many_replicas = share.get("n20", "n0", "file")
        assert many_replicas <= few_replicas


class TestSnapshots:
    """Deterministic snapshot()/restore() with certified digests (ISSUE 7)."""

    def build(self):
        atum, share, addresses = make_ashare(feedback=False)
        share.put("n0", "dataset", size_bytes=20 * MB, num_chunks=10)
        share.put("n0", "movie", size_bytes=10 * MB, num_chunks=5)
        atum.run(until=60.0)
        share.seed_replicas("n0", "dataset", ["n3", "n4"])
        return atum, share

    def test_snapshot_is_deterministic_and_restore_round_trips(self):
        atum, share = self.build()
        snapshot = share.snapshot("n0")
        digest = share.snapshot_digest("n0")
        assert share.snapshot("n0") == snapshot  # pure query, no mutation
        assert share.restore("n9", snapshot, expected_digest=digest)
        assert share.snapshot_digest("n9") == digest
        assert share.index_of("n9").get("n0", "dataset").replicas == {"n0", "n3", "n4"}
        assert atum.sim.metrics.counter("ashare.snapshots_restored") == 1
        assert atum.sim.metrics.counter("ashare.snapshot_rejected") == 0

    def test_restore_rejects_digest_mismatch(self):
        atum, share = self.build()
        snapshot = share.snapshot("n0")
        digest = share.snapshot_digest("n0")
        tampered = dict(snapshot)
        tampered["stored"] = ()
        before = share.snapshot_digest("n9")
        assert not share.restore("n9", tampered, expected_digest=digest)
        assert share.snapshot_digest("n9") == before  # state untouched
        assert atum.sim.metrics.counter("ashare.snapshot_rejected") == 1

    def test_restore_rejects_tampered_chunk_digests_even_with_matching_digest(self):
        # The adversary recomputes the outer digest over forged metadata;
        # the inner chunk-digest check still refuses it.
        from repro.crypto.digest import digest_object

        atum, share = self.build()
        snapshot = share.snapshot("n0")
        records = [dict(entry) for entry in snapshot["records"]]
        records[0]["chunk_digests"] = tuple(
            chunk_digest("mallory", "evil", i) for i in range(records[0]["num_chunks"])
        )
        forged = dict(snapshot, records=tuple(records))
        assert not share.restore("n9", forged, expected_digest=digest_object(forged))
        assert atum.sim.metrics.counter("ashare.snapshot_rejected") == 1

    def test_restore_rejects_malformed_snapshots(self):
        atum, share = self.build()
        assert not share.restore("n9", {"app": "other"})
        assert not share.restore("n9", {"app": "ashare", "records": [{"owner": "x"}], "stored": ()})
        assert atum.sim.metrics.counter("ashare.snapshot_rejected") == 2
