"""Post-partition anti-entropy: digest-exchange repair of missed broadcasts.

Gossip dissemination is best-effort while the network is degraded: shares
dropped by a partition are never retransmitted, so a vgroup (or a side of a
side-preserving split) that missed a broadcast stays divergent forever after
the heal.  This module adds the repair layer the ROADMAP calls for — and
that the policy-free-middleware line of work argues must be a first-class
layer rather than an assumption: each node periodically exchanges a compact
summary of the broadcast ids it has delivered with gossip neighbours
(vgroup co-members and members of H-graph neighbour vgroups), detects gaps
in either direction, and re-requests or re-supplies the missing payloads.

Repair never bypasses the safety machinery it heals:

* **Cross-group repair** re-sends this node's *own share* of the broadcast
  through :class:`~repro.group.messages.GroupMessenger` under the same
  deterministic gm-id ordinary forwarding uses, so re-sent shares combine
  with any shares that survived the partition and the receiving vgroup
  still accepts only on a strict majority of the sender vgroup.  A hint to
  co-members makes the rest of the local vgroup re-send their shares too,
  so a majority accumulates within a couple of periods.
* **Intra-group repair** re-*proposes* the broadcast operation through the
  vgroup's own SMR engine (the agreement primitive), which re-decides it at
  every member; nodes that already delivered dedup on the broadcast id.

All randomness (peer choice) comes from a dedicated per-node seeded stream
(``antientropy.<address>``), created only when the layer is enabled, so
runs without anti-entropy are byte-identical to builds without this module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core.middleware import Middleware, MiddlewareContext
from repro.net.requests import (
    JitteredBackoff,
    RequestManager,
    RequestPolicy,
    ResponseEnvelope,
)


@dataclass(frozen=True)
class AntiEntropyConfig:
    """Tunables of the anti-entropy repair layer.

    Attributes:
        period: Interval between summary exchanges.
        start_delay: Delay before the first exchange after (re)start.
        fanout: Peers contacted per tick.
        max_summary_ids: Newest delivered broadcast ids per summary.  This
            is also the repair horizon: a gap older than every peer's
            window can no longer be detected (the ``ae.summary_window_
            truncated`` counter records when the window saturates), and
            payloads that age out of it are dropped from the repair store.
        repair_min_age: Only broadcasts delivered at least this long ago are
            advertised in summaries.  Ordinary dissemination is still in
            flight for younger ones, and repairing a gap the next network
            hop is about to close anyway would waste bandwidth — a quiet
            healthy system exchanges summaries but repairs nothing.
        max_repairs_per_peer: Repair actions triggered per incoming message.
        resend_backoff_base: First-retry spacing for re-sends of the same
            share to the same target vgroup (replaces the old fixed
            ``resend_cooldown``: fixed cooldowns fire in lockstep after a
            heal, which is exactly the ``ae.retry_storm`` pathology).
        repropose_backoff_base: First-retry spacing for SMR re-proposals
            of the same broadcast inside the own vgroup (replaces the old
            fixed ``repropose_cooldown``).
        backoff_factor: Multiplier applied to repair spacing per repeat;
            ``1.0`` reproduces the legacy fixed-cooldown behaviour.
        backoff_jitter: Relative jitter half-width on repair spacing,
            drawn from a dedicated seeded stream
            (``antientropy.backoff.<address>``); ``0`` draws no RNG.
        backoff_max: Ceiling on the (pre-jitter) repair spacing.
        pull_timeout: First-attempt deadline of an envelope-wrapped
            ``ae.pull`` request (retries back off through the unified
            request layer).
        pull_attempts: Responders tried per pull before giving up (the
            next summary round re-detects a still-open gap anyway).
        summary_bytes_base: Fixed wire size of a summary/request/hint.
        summary_bytes_per_id: Per-id wire size of a summary/request/hint.
        gc_settled_age: Age after which a *settled* broadcast's payload is
            garbage-collected from the repair store (with its cooldown
            state).  Every reachable peer had this long to pull the payload;
            under sustained traffic (continuous churn especially) keeping
            settled payloads forever is the unbounded-store growth the
            ROADMAP flagged.  ``None`` disables the age GC, leaving only the
            summary-window bound.
    """

    period: float = 1.0
    start_delay: float = 0.5
    fanout: int = 2
    max_summary_ids: int = 256
    repair_min_age: float = 2.0
    max_repairs_per_peer: int = 16
    resend_backoff_base: float = 2.0
    repropose_backoff_base: float = 4.0
    backoff_factor: float = 1.6
    backoff_jitter: float = 0.35
    backoff_max: float = 16.0
    pull_timeout: float = 3.0
    pull_attempts: int = 3
    summary_bytes_base: int = 48
    summary_bytes_per_id: int = 8
    gc_settled_age: Optional[float] = 120.0


class AntiEntropyRepair:
    """Per-node anti-entropy component (owned by an ``AtumNode``).

    The host node routes the ``ae.summary`` / ``ae.request`` / ``ae.hint``
    direct messages here, feeds every delivered broadcast into
    :meth:`on_delivered`, and starts/stops the periodic timer alongside its
    membership (started on view install, stopped on leave).
    """

    def __init__(self, node, config: Optional[AntiEntropyConfig] = None) -> None:
        self.node = node
        self.config = config or AntiEntropyConfig()
        # Effective repair cadence.  The AntiEntropyConfig object is frozen
        # and shared across every node of a cluster, so runtime adaptation
        # (the ParameterBus's ``antientropy_period``) overrides this field
        # per repairer via set_period instead of mutating the config; the
        # change takes effect when the next tick reschedules.  All other
        # config fields — repair_min_age in particular — are
        # adaptation-immutable: shrinking the minimum repair age mid-run
        # would re-request broadcasts that are merely in flight.
        self._period = self.config.period
        self.running = False
        self._timer_armed = False
        self._rng = node.sim.rng.stream(f"antientropy.{node.address}")
        # Payloads of delivered broadcasts, kept for repair re-supply.
        self.store: Dict[str, Any] = {}
        cfg = self.config
        # Repair spacing: seeded-jitter exponential backoff per repair key
        # ((bcast_id, target_group) for share re-sends, bcast_id for
        # re-proposals) replaces the old fixed cooldown constants, so
        # repair traffic desynchronises after a heal instead of spiking
        # in lockstep.  The streams are created lazily: a run that never
        # repairs draws nothing.
        self._resend_backoff = JitteredBackoff(
            node.sim,
            f"antientropy.backoff.{node.address}",
            base=cfg.resend_backoff_base,
            factor=cfg.backoff_factor,
            jitter=cfg.backoff_jitter,
            max_delay=cfg.backoff_max,
        )
        self._repropose_backoff = JitteredBackoff(
            node.sim,
            f"antientropy.backoff.{node.address}",
            base=cfg.repropose_backoff_base,
            factor=cfg.backoff_factor,
            jitter=cfg.backoff_jitter,
            max_delay=cfg.backoff_max,
        )
        # Lockstep watchdog: repair key -> (last repair time, last gap).
        # Two identical consecutive gaps for the same key mean the spacing
        # degenerated back to a fixed cooldown (ae.retry_storm counts it).
        self._storm: Dict[Any, Tuple[float, Optional[float]]] = {}
        # Envelope-wrapped ae.pull requests: correlation, deadlines,
        # rotation over gossip neighbours and the responder scoreboard
        # come from the unified request layer.
        self._requests = RequestManager(
            node.sim,
            node.address,
            self._send_pull,
            policy=RequestPolicy(
                base_timeout=cfg.pull_timeout,
                max_attempts=cfg.pull_attempts,
                # Candidates are preference-ordered (summary sender first —
                # the one peer known to hold the missing ids); with bounded
                # attempts a spread first pick could burn the whole budget
                # on neighbours that never advertised the data.
                spread_rotation=False,
            ),
            stream_name=f"requests.ae.{node.address}",
        )
        # Broadcast ids with a pull in flight (no duplicate pulls).
        self._pending_pull_ids: set = set()
        node.register_direct_handler("ae.summary", self._on_summary)
        node.register_direct_handler("ae.request", self._on_request)
        node.register_direct_handler("ae.hint", self._on_hint)

    def _send_pull(self, peer: str, payload: Any, size_bytes: int) -> None:
        self.node.send_direct(peer, "ae.request", payload, size_bytes=size_bytes)

    # ---------------------------------------------------------------- lifecycle

    def start(self) -> None:
        self.running = True
        if not self._timer_armed:
            self._timer_armed = True
            self.node.sim.schedule(self.config.start_delay, self._tick, tag="ae.tick")

    def stop(self) -> None:
        self.running = False

    def set_period(self, period: float) -> None:
        """Override the repair cadence; applies when the next tick fires."""
        if period <= 0:
            raise ValueError(f"anti-entropy period must be positive, got {period!r}")
        self._period = period

    def on_delivered(self, message) -> None:
        """Record a delivered broadcast's payload for later re-supply.

        The store is bounded by the advertisable summary window: a
        broadcast that fell out of every peer's newest-``max_summary_ids``
        summary can never be requested again (repair is pull-only), so its
        payload — and its repair cooldowns — are dropped.  The trim runs at
        25% slack so it costs one pass per quarter-window of deliveries.
        """
        self.store[message.bcast_id] = message
        cap = self.config.max_summary_ids
        if len(self.store) > cap + cap // 4:
            advertisable = set(self.node.delivered_order[-cap:])
            for bcast_id in [b for b in self.store if b not in advertisable]:
                del self.store[bcast_id]
            self._forget_repair_state(lambda b: b not in advertisable)

    def _forget_repair_state(self, dropped) -> None:
        """Drop backoff/watchdog state for broadcasts matching ``dropped``."""
        self._resend_backoff.prune(lambda key: dropped(key[0]))
        self._repropose_backoff.prune(dropped)
        for key in [
            k
            for k in self._storm
            if dropped(k[0] if isinstance(k, tuple) else k)
        ]:
            del self._storm[key]

    # -------------------------------------------------------------------- ticks

    def _tick(self) -> None:
        if not self.running:
            self._timer_armed = False
            return
        self.node.sim.schedule(self._period, self._tick, tag="ae.tick")
        node = self.node
        if not node.is_correct or not node.is_member:
            return
        self._gc_settled()
        peers = self._peer_candidates()
        if not peers:
            return
        count = min(self.config.fanout, len(peers))
        chosen = self._rng.sample(peers, count)
        # The summary carries the delivered-id window plus the replica's
        # stable-checkpoint seq (None for engines without checkpointing):
        # repair direction is carried by the ae.request reply (which names
        # the *requester's* group), and the checkpoint seq lets a stalled
        # co-member discover an SMR log gap without waiting for a view
        # change (see AtumNode.on_checkpoint_hint).
        summary = (self._summary_ids(), node.smr_stable_checkpoint())
        size = self.config.summary_bytes_base + self.config.summary_bytes_per_id * len(
            summary[0]
        )
        for peer in chosen:
            node.send_direct(peer, "ae.summary", summary, size_bytes=size)
            node.sim.metrics.increment("ae.summaries_sent")

    def _gc_settled(self) -> None:
        """Drop settled payloads (and their cooldowns) from the repair store.

        A payload delivered more than ``gc_settled_age`` ago had dozens of
        summary periods to be pulled by any reachable peer; holding it
        longer only grows the store without bound under sustained traffic.
        Gaps older than that horizon are beyond this node's repair reach
        (a co-member with a fresher copy, or nobody, serves them).
        """
        age = self.config.gc_settled_age
        if age is None or not self.store:
            return
        cutoff = self.node.sim.now - age
        delivered = self.node.delivered
        stale = [b for b in self.store if delivered.get(b, cutoff) < cutoff]
        if not stale:
            return
        for bcast_id in stale:
            del self.store[bcast_id]
        stale_set = set(stale)
        self._forget_repair_state(lambda b: b in stale_set)
        self.node.sim.metrics.increment("ae.store_gc_dropped", len(stale))

    def _peer_candidates(self) -> List[str]:
        """Gossip neighbours, in deterministic order: co-members, then members
        of H-graph cycle-neighbour vgroups."""
        node = self.node
        view = node.vgroup_view
        if view is None:
            return []
        own_group = view.group_id
        candidates: List[str] = [m for m in view.members if m != node.address]
        seen_groups = {own_group}
        for pair in node.directory.cycle_neighbor_ids(own_group):
            for group_id in pair:
                if group_id in seen_groups:
                    continue
                seen_groups.add(group_id)
                neighbour_view = node.directory.view_of_group(group_id)
                if neighbour_view is not None:
                    candidates.extend(neighbour_view.members)
        return candidates

    def _summary_ids(self) -> Tuple[str, ...]:
        node = self.node
        order = node.delivered_order
        cap = self.config.max_summary_ids
        if len(order) > cap:
            # Gaps older than every peer's window become unrepairable; the
            # counter makes the coverage cap observable instead of silent.
            node.sim.metrics.increment("ae.summary_window_truncated")
            order = order[-cap:]
        threshold = node.sim.now - self.config.repair_min_age
        delivered = node.delivered
        return tuple(b for b in order if delivered[b] <= threshold)

    # ----------------------------------------------------------------- handlers

    def _on_summary(self, payload, sender: str) -> None:
        # Pull-only: the requester knows *exactly* what it lacks, so gaps
        # detected here are real.  (Pushing on a summary *difference* would
        # compare two age-filtered snapshots taken at different times and
        # re-send shares for deliveries that are merely in flight.)
        node = self.node
        if not node.is_correct or not node.is_member:
            return
        peer_ids, peer_checkpoint = payload
        if peer_checkpoint is not None:
            # Co-membership and rate limiting are checked by the node/
            # manager; the hint itself is untrusted (the state-transfer
            # response it provokes carries the verifiable certificate).
            node.on_checkpoint_hint(sender, peer_checkpoint)
        cap = self.config.max_repairs_per_peer
        delivered = node.delivered
        missing_here = [
            b
            for b in peer_ids
            if b not in delivered and b not in self._pending_pull_ids
        ]
        if missing_here:
            self._issue_pull(sender, tuple(missing_here[:cap]))

    def _issue_pull(self, sender: str, wanted: Tuple[str, ...]) -> None:
        """Pull missing broadcasts through the unified request layer.

        The summary sender is tried first; on timeout or an empty-handed
        reply the request rotates through the other gossip neighbours
        (bounded by ``pull_attempts``).  Satisfaction is *delivery*: an
        honest server repairs through gossip/SMR side channels, so the
        pull completes quietly once the ids land — only servers that
        neither replied nor repaired in time accrue timeout suspicion.
        """
        node = self.node
        candidates = [sender] + [
            p for p in self._peer_candidates() if p != sender
        ]
        group_id = node.vgroup_view.group_id
        size = self.config.summary_bytes_base + (
            self.config.summary_bytes_per_id * len(wanted)
        )
        delivered = node.delivered
        wanted_set = set(wanted)

        def _verdict(payload, responder: str) -> Optional[str]:
            if not isinstance(payload, tuple):
                return "garbage"
            if not payload:
                return "stale"  # empty-handed: rotate to the next neighbour
            return None  # acked; wait for the gossip-side repair to land

        request_id = self._requests.request(
            "ae.pull",
            (group_id, wanted),
            candidates,
            on_response=_verdict,
            satisfied=lambda: all(b in delivered for b in wanted),
            on_done=lambda: self._pending_pull_ids.difference_update(wanted_set),
            size_bytes=size,
        )
        if request_id is not None:
            self._pending_pull_ids.update(wanted_set)
            node.sim.metrics.increment("ae.requests_sent")

    def _on_request(self, payload, sender: str) -> None:
        node = self.node
        if not node.is_correct or not node.is_member:
            return
        if isinstance(payload, ResponseEnvelope):
            self._requests.on_envelope(payload, sender)
            return
        envelope = self._requests.validate_request(payload, "ae.pull", sender)
        if envelope is None:
            return
        inner = envelope.payload
        if (
            not isinstance(inner, tuple)
            or len(inner) != 2
            or not isinstance(inner[1], tuple)
        ):
            node.sim.metrics.increment("req.rejected_malformed")
            return
        requester_group, wanted = inner
        held = [b for b in wanted if b in self.store][
            : self.config.max_repairs_per_peer
        ]
        ack = tuple(held)
        size = self.config.summary_bytes_base + (
            self.config.summary_bytes_per_id * len(ack)
        )
        self._requests.respond(envelope, ack, size_bytes=size)
        if held:
            self._repair(held, requester_group, hint=True)

    def _on_hint(self, payload, sender: str) -> None:
        """A co-member noticed ``target_group`` misses ids we may hold."""
        node = self.node
        if not node.is_correct or not node.is_member:
            return
        view = node.vgroup_view
        if sender not in view.members:
            return
        target_group, ids = payload
        held = [b for b in ids if b in self.store]
        if held:
            # No further hinting: hints fan out one intra-group hop only.
            self._repair(held[: self.config.max_repairs_per_peer], target_group, hint=False)

    # ------------------------------------------------------------------- repair

    def _gate(self, backoff: JitteredBackoff, key) -> bool:
        """Backoff-gate one repair action, watching for lockstep retries.

        Two identical consecutive gaps between repairs of the same key
        mean the spacing degenerated into the fixed-cooldown pathology
        (every starved node re-firing on the same metronome after a
        heal); ``ae.retry_storm`` counts those so the regression test —
        and the matrix — can assert the jittered default never does it.
        """
        if not backoff.attempt(key):
            return False
        now = self.node.sim.now
        state = self._storm.get(key)
        if state is None:
            self._storm[key] = (now, None)
        else:
            last, gap = state
            new_gap = now - last
            if gap is not None and abs(new_gap - gap) < 1e-9:
                self.node.sim.metrics.increment("ae.retry_storm")
            self._storm[key] = (now, new_gap)
        return True

    def _repair(self, bcast_ids, target_group: str, hint: bool) -> None:
        node = self.node
        view = node.vgroup_view
        if view is None:
            return
        if target_group == view.group_id:
            # Intra-group gap: go through the vgroup's own agreement engine.
            for bcast_id in bcast_ids:
                message = self.store.get(bcast_id)
                if message is None:
                    continue
                if not self._gate(self._repropose_backoff, bcast_id):
                    continue
                if node.repropose_broadcast(message):
                    node.sim.metrics.increment("ae.reproposals")
            return
        target_view = node.directory.view_of_group(target_group)
        if target_view is None:
            return
        resent: List[str] = []
        for bcast_id in bcast_ids:
            message = self.store.get(bcast_id)
            if message is None:
                continue
            key = (bcast_id, target_group)
            if not self._gate(self._resend_backoff, key):
                continue
            # Same deterministic gm-id as ordinary forwarding, so re-sent
            # shares combine with shares that survived the partition and the
            # target still accepts only on a sender-vgroup majority.
            gm_id = f"gossip:{bcast_id}:{view.group_id}->{target_group}"
            node.messenger.send(
                target_view,
                "gossip",
                message,
                gm_id=gm_id,
                payload_bytes=message.size_bytes + 64,
            )
            node.sim.metrics.increment("ae.shares_resent")
            resent.append(bcast_id)
        if hint and resent:
            payload = (target_group, tuple(resent))
            size = self.config.summary_bytes_base + self.config.summary_bytes_per_id * len(
                resent
            )
            for member in view.members:
                if member != node.address:
                    node.send_direct(member, "ae.hint", payload, size_bytes=size)
                    node.sim.metrics.increment("ae.hints_sent")


class AntiEntropyTap(Middleware):
    """Feeds broadcast deliveries to each node's repair actor.

    The summary tap of the repair layer: every broadcast a node delivers
    enters that node's :class:`AntiEntropyRepair` store so later digest
    exchanges can advertise (and re-supply) it.  Installed automatically by
    ``AtumCluster`` whenever an :class:`AntiEntropyConfig` is set.  Pure
    store mutation — no RNG draws, no scheduled events — so its position in
    the ``on_deliver`` pipeline never affects the event trace.
    """

    def on_deliver(self, ctx: MiddlewareContext) -> None:
        if ctx.channel != "broadcast":
            return
        repair = ctx.node.antientropy
        if repair is not None:
            repair.on_delivered(ctx.payload)


__all__ = ["AntiEntropyConfig", "AntiEntropyRepair", "AntiEntropyTap"]
