"""Capture the golden protocol-path traces (run with the PRE-optimisation code).

Produces two golden files next to this script:

* ``golden_protocol_dissemination.json`` — the structural round-by-round
  forwarding trace of a broadcast over a 3-cycle H-graph under the flood and
  random policies (via :func:`repro.overlay.gossip.dissemination_trace`).
* ``golden_protocol_stack.json`` — the full ``(time, tag)`` event trace and
  figure outputs of a small protocol-stack broadcast scenario (group
  messenger + gossip forwarding + heartbeats on the real network/simulator).

Capture provenance
------------------

The ``flood`` dissemination trace and the stack trace were captured at commit
9967c2e (the pre-PR protocol path).  Both are independent of Python's hash
randomisation, so they replay byte-identically on any interpreter — the fast
protocol path is held to them.

The ``random`` dissemination trace could NOT be captured on the pre-PR code:
the old ``random_policy`` drew its candidate list from a ``set`` (hash-seed
dependent iteration order), so its forward sets differed between interpreter
invocations — there was no byte-stable pre-PR behaviour to record.  It was
therefore captured on the deterministic fast path introduced by this PR
(ordered neighbour tables + ``rng.sample``) and locks that new guarantee.

Regenerate deliberately with::

    PYTHONPATH=src python tests/golden/capture_protocol_golden.py
"""

import json
import os
import random
import sys

from repro.overlay.gossip import dissemination_trace, flood_policy, random_policy
from repro.overlay.hgraph import HGraph
from repro.sim.protocol_perf import run_broadcast_scenario

HERE = os.path.dirname(os.path.abspath(__file__))
DISSEMINATION_PATH = os.path.join(HERE, "golden_protocol_dissemination.json")
STACK_PATH = os.path.join(HERE, "golden_protocol_stack.json")

GRAPH_SEED = 5
GRAPH_VERTICES = 27
GRAPH_CYCLES = 3
MESSAGE_ID = "gm-golden-1"

STACK_SEED = 21
STACK_GROUPS = 12
STACK_GROUP_SIZE = 5
STACK_BROADCASTS = 3
STACK_HORIZON = 30.0


def build_graph() -> HGraph:
    return HGraph.random(
        [f"g{i}" for i in range(GRAPH_VERTICES)], GRAPH_CYCLES, random.Random(GRAPH_SEED)
    )


def capture_dissemination(include_random: bool) -> dict:
    graph = build_graph()
    flood = dissemination_trace(
        graph, "g0", flood_policy, random.Random(17), message_id=MESSAGE_ID
    )
    payload = {
        "graph_seed": GRAPH_SEED,
        "vertices": GRAPH_VERTICES,
        "cycles": GRAPH_CYCLES,
        "message_id": MESSAGE_ID,
        "flood": flood,
    }
    if include_random:
        payload["random"] = dissemination_trace(
            graph, "g0", random_policy(fanout=2), random.Random(17), message_id=MESSAGE_ID
        )
    return payload


def capture_stack() -> dict:
    trace: list = []
    outcome = run_broadcast_scenario(
        seed=STACK_SEED,
        groups=STACK_GROUPS,
        group_size=STACK_GROUP_SIZE,
        hc=GRAPH_CYCLES,
        broadcasts=STACK_BROADCASTS,
        policy="flood",
        horizon=STACK_HORIZON,
        trace=trace,
    )
    metrics_keys = (
        "processed_events",
        "messages_delivered",
        "messages_sent",
        "shares_sent",
        "group_accepted",
        "deliveries",
        "delivery_fraction",
    )
    return {
        "seed": STACK_SEED,
        "groups": STACK_GROUPS,
        "group_size": STACK_GROUP_SIZE,
        "hc": GRAPH_CYCLES,
        "broadcasts": STACK_BROADCASTS,
        "horizon": STACK_HORIZON,
        "trace_length": len(trace),
        "figures": {key: outcome[key] for key in metrics_keys},
        "trace": [[t, tag] for t, tag in trace],
    }


def main() -> None:
    include_random = "--no-random" not in sys.argv
    dissemination = capture_dissemination(include_random)
    if not include_random and os.path.exists(DISSEMINATION_PATH):
        # Pre-PR capture pass: keep any previously captured random trace.
        with open(DISSEMINATION_PATH, "r", encoding="utf-8") as fh:
            previous = json.load(fh)
        if "random" in previous:
            dissemination["random"] = previous["random"]
    with open(DISSEMINATION_PATH, "w", encoding="utf-8") as fh:
        json.dump(dissemination, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"wrote {DISSEMINATION_PATH} (flood rounds={len(dissemination['flood'])})")

    stack = capture_stack()
    with open(STACK_PATH, "w", encoding="utf-8") as fh:
        json.dump(stack, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"wrote {STACK_PATH} (trace length={stack['trace_length']})")


if __name__ == "__main__":
    main()
