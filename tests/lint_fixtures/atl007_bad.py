"""ATL007 fixture: payloads mutated after being handed to send*."""


def broadcast(transport, payload, trailer):
    transport.send(payload)
    payload.append(trailer)


def annotate(transport, message):
    transport.send_direct(message)
    message["hops"] = 1


def branch_send(transport, payload, fast):
    if fast:
        transport.send(payload)
        payload.clear()
