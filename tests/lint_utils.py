"""Shared helpers for the atumlint test suite (tests/test_lint_*.py).

Each per-rule test lints one fixture from ``tests/lint_fixtures/`` through
the real analyzer entry point (:func:`repro.lint.run_lint`) with the repo
root as the path base, exactly as the CLI does.
"""

from pathlib import Path

from repro.lint import run_lint

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = REPO_ROOT / "tests" / "lint_fixtures"
SRC = REPO_ROOT / "src" / "repro"


def lint_fixture(name, rules=None):
    """Findings for one fixture file (all rules unless ``rules`` is given)."""
    return run_lint([FIXTURES / name], root=REPO_ROOT, rule_ids=rules)


def rules_of(findings):
    return [finding.rule for finding in findings]
