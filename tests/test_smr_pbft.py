"""Tests for the asynchronous (PBFT-style) SMR engine."""

import pytest

from repro.net.latency import LogNormalLatency
from repro.smr import PbftReplica, ReplicaGroupHarness, SmrConfig
from repro.smr.base import async_fault_threshold


class TestFaultThreshold:
    @pytest.mark.parametrize(
        "size,expected", [(1, 0), (3, 0), (4, 1), (7, 2), (10, 3), (13, 4)]
    )
    def test_async_threshold(self, size, expected):
        assert async_fault_threshold(size) == expected


def make_harness(group_size, silent=(), seed=0, timeout=2.0):
    return ReplicaGroupHarness(
        group_size=group_size,
        replica_class=PbftReplica,
        config=SmrConfig(request_timeout=timeout),
        seed=seed,
        latency_model=LogNormalLatency(median=0.02, sigma=0.3),
        silent_byzantine=silent,
    )


class TestPbftAgreement:
    def test_single_replica_group_decides(self):
        harness = make_harness(1)
        op = harness.propose("replica-0", "noop", 1)
        harness.run(until=5.0)
        assert harness.all_correct_decided(op.op_id)

    def test_four_replicas_decide_primary_proposal(self):
        harness = make_harness(4)
        op = harness.propose("replica-0", "broadcast", "hello")
        harness.run(until=10.0)
        assert harness.all_correct_decided(op.op_id)

    def test_non_primary_proposal_is_forwarded(self):
        harness = make_harness(4)
        op = harness.propose("replica-2", "broadcast", "from-backup")
        harness.run(until=10.0)
        assert harness.all_correct_decided(op.op_id)

    def test_latency_is_sub_second_on_lan_like_network(self):
        harness = make_harness(7)
        op = harness.propose("replica-0", "broadcast", "payload")
        start = harness.sim.now
        harness.run(until=10.0)
        assert harness.all_correct_decided(op.op_id)
        assert harness.decision_latency(op.op_id, proposed_at=start) < 1.0

    def test_many_operations_same_log_order(self):
        harness = make_harness(4)
        for index in range(5):
            harness.propose("replica-1", "op", index, op_id=f"op-{index}")
        harness.run(until=30.0)
        logs = harness.decided_logs()
        assert all(log == logs[0] for log in logs)
        assert set(logs[0]) == {f"op-{i}" for i in range(5)}

    def test_tolerates_silent_byzantine_below_threshold(self):
        # 7 replicas tolerate f = 2 silent Byzantine nodes.
        harness = make_harness(7, silent=("replica-5", "replica-6"))
        op = harness.propose("replica-0", "broadcast", "x")
        harness.run(until=20.0)
        assert harness.all_correct_decided(op.op_id)

    def test_view_change_when_primary_is_silent(self):
        # The primary of view 0 is the smallest address (replica-0).  Making it
        # silent forces the backups to elect a new primary via view change.
        harness = make_harness(4, silent=("replica-0",), timeout=1.0)
        op = harness.propose("replica-1", "broadcast", "needs-view-change")
        harness.run(until=60.0)
        assert harness.all_correct_decided(op.op_id)
        assert harness.sim.metrics.counter("smr.pbft.view_changes") > 0

    def test_reconfigure_installs_new_epoch(self):
        harness = make_harness(4)
        op = harness.propose("replica-0", "broadcast", "before")
        harness.run(until=10.0)
        assert harness.all_correct_decided(op.op_id)
        for actor in harness.actors.values():
            assert actor.replica.epoch == 0
            actor.replica.reconfigure(harness.addresses)
            assert actor.replica.epoch == 1

    def test_duplicate_proposal_executes_once(self):
        harness = make_harness(4)
        harness.propose("replica-0", "op", "x", op_id="dup")
        harness.run(until=10.0)
        harness.propose("replica-0", "op", "x", op_id="dup")
        harness.run(until=20.0)
        for actor in harness.correct_actors():
            ids = [op.op_id for op in actor.decided]
            assert ids.count("dup") == 1
