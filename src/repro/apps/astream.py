"""AStream: a two-tier data streaming system (paper section 4.3).

Tier one is Atum itself: the source broadcasts small authentication metadata
(chunk digests) through the group communication layer, customising the
``forward`` callback to gossip on one (``Single``) or two (``Double``) H-graph
cycles -- the trade-off evaluated in Figure 12.

Tier two is a lightweight multicast over a *spanning forest*:

* a deterministic function picks one H-graph cycle ``w`` and a direction on
  it; every node selects ``f + 1`` parents among the members of the
  neighbouring vgroup in that direction (towards the source), so at least one
  parent is correct;
* nodes whose vgroup is the source's vgroup (or adjacent to it) use the source
  itself as their single parent, rooting the forest;
* data chunks are *pushed* down the forest; a node that received a chunk's
  digest through tier one but not the chunk itself *pulls* it from one of its
  other parents after a timeout.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.cluster import AtumCluster
from repro.core.config import SmrKind
from repro.core.node import BroadcastMessage
from repro.crypto.digest import digest_object


@dataclass(frozen=True)
class StreamChunk:
    """One chunk of the data stream."""

    stream_id: str
    index: int
    size_bytes: int
    created_at: float

    @property
    def digest(self) -> str:
        return digest_object({"stream": self.stream_id, "index": self.index, "size": self.size_bytes})


@dataclass
class _NodeStreamState:
    """Per-node state of one streaming session."""

    parents: List[str] = field(default_factory=list)
    children: List[str] = field(default_factory=list)
    received_chunks: Dict[int, float] = field(default_factory=dict)
    known_digests: Dict[int, str] = field(default_factory=dict)
    pulls_issued: int = 0


class AStreamSession:
    """One streaming session from a source node over an Atum cluster.

    Args:
        atum: The Atum cluster carrying the stream.
        source: Address of the streaming source.
        forward_policy: Tier-one gossip policy, ``"single"`` or ``"double"``
            (the two configurations of Figure 12).
        chunk_bytes: Size of a data chunk.
        rate_bytes_per_s: Stream data rate (1 MB/s in the paper).
        parents_per_node: Number of parents per node (``f + 1`` by default).
        pull_timeout: Time after which a missing chunk is pulled from an
            alternate parent.
    """

    def __init__(
        self,
        atum: AtumCluster,
        source: str,
        forward_policy: str = "single",
        chunk_bytes: int = 250_000,
        rate_bytes_per_s: float = 1_000_000.0,
        parents_per_node: Optional[int] = None,
        pull_timeout: float = 1.0,
        cycle: int = 0,
    ) -> None:
        self.atum = atum
        self.source = source
        self.forward_policy = forward_policy
        self.chunk_bytes = chunk_bytes
        self.rate_bytes_per_s = rate_bytes_per_s
        self.pull_timeout = pull_timeout
        self.cycle = cycle % max(1, atum.params.hc)
        self.stream_id = f"stream-{source}"
        self._chunk_counter = itertools.count(0)
        self.states: Dict[str, _NodeStreamState] = {}
        self.chunks: Dict[int, StreamChunk] = {}
        source_view = atum.nodes[source].vgroup_view
        if source_view is None:
            raise RuntimeError("the streaming source must be a member of the system")
        group_size = source_view.size
        self.parents_per_node = (
            parents_per_node
            if parents_per_node is not None
            else atum.params.fault_threshold(group_size) + 1
        )
        self._configure_tier1()
        self._build_forest()
        self._register_handlers()

    # ------------------------------------------------------------------- set-up

    def _configure_tier1(self) -> None:
        """Customise the forward callback of every node for this stream."""
        policy = "single" if self.forward_policy == "single" else "double"
        for node in self.atum.nodes.values():
            node.forward_policy = policy

    def _build_forest(self) -> None:
        """Build the spanning forest rooted at the source (section 4.3).

        Nodes of vgroup ``G`` choose their parents among the members of the
        predecessor vgroup of ``G`` on the chosen cycle (the vgroup one hop
        closer to the source when walking the cycle away from the source's
        vgroup); nodes in the source's own vgroup, and in its immediate
        successor vgroup, use the source as their single parent.
        """
        engine = self.atum.engine
        graph = engine.graph
        if graph is None:
            raise RuntimeError("the overlay is empty")
        rng = self.atum.sim.rng.stream("astream-forest")
        source_group = engine.node_group[self.source]

        for address, node in self.atum.nodes.items():
            if not node.is_member or address == self.source:
                continue
            state = self.states.setdefault(address, _NodeStreamState())
            group_id = engine.node_group.get(address)
            if group_id is None:
                continue
            if group_id == source_group:
                state.parents = [self.source]
            else:
                parent_group = graph.predecessor(group_id, self.cycle)
                if parent_group == source_group:
                    state.parents = [self.source]
                else:
                    candidates = [
                        member
                        for member in engine.groups[parent_group].members
                        if member != address
                    ]
                    rng.shuffle(candidates)
                    state.parents = candidates[: max(1, self.parents_per_node)] or [self.source]
                # Shortcut parent from another neighbouring vgroup (used as a
                # pull fallback when the node is far from the source).
                other_neighbors = [
                    g for g in graph.neighbors(group_id) if g not in (parent_group, group_id)
                ]
                if other_neighbors:
                    shortcut_group = sorted(other_neighbors)[0]
                    shortcut_members = list(engine.groups[shortcut_group].members)
                    if shortcut_members:
                        state.parents.append(shortcut_members[0])
        # Derive children lists from the parent lists.
        self.states.setdefault(self.source, _NodeStreamState())
        for address, state in self.states.items():
            for parent in state.parents:
                parent_state = self.states.setdefault(parent, _NodeStreamState())
                if address not in parent_state.children:
                    parent_state.children.append(address)

    def _register_handlers(self) -> None:
        for address, node in self.atum.nodes.items():
            node.register_direct_handler(
                "astream.push", lambda payload, sender, a=address: self._on_push(a, payload)
            )
            node.register_direct_handler(
                "astream.pull", lambda payload, sender, a=address: self._on_pull(a, payload, sender)
            )
            previous = node.deliver_fn
            node.deliver_fn = self._make_tier1_deliver(address, previous)  # atumlint: allow[ATL009] application-tier delivery decoration; observability belongs in repro.core.middleware

    def _make_tier1_deliver(self, address: str, previous):
        def deliver(message: BroadcastMessage) -> None:
            if previous is not None:
                previous(message)
            payload = message.payload
            if isinstance(payload, dict) and payload.get("app") == "astream":
                self._on_digest(address, payload)

        return deliver

    # ---------------------------------------------------------------- streaming

    def stream(self, duration_s: float) -> int:
        """Schedule the emission of ``duration_s`` seconds of stream data.

        Returns the number of chunks that will be emitted.  The caller then
        advances the simulation (``atum.run_for``) to let them propagate.
        """
        interval = self.chunk_bytes / self.rate_bytes_per_s
        count = max(1, int(duration_s / interval))
        for index in range(count):
            self.atum.sim.schedule(index * interval, self._emit_chunk, tag="astream.emit")
        return count

    def _emit_chunk(self) -> None:
        index = next(self._chunk_counter)
        chunk = StreamChunk(
            stream_id=self.stream_id,
            index=index,
            size_bytes=self.chunk_bytes,
            created_at=self.atum.sim.now,
        )
        self.chunks[index] = chunk
        source_state = self.states[self.source]
        source_state.received_chunks[index] = self.atum.sim.now
        # Tier one: broadcast the chunk digest through Atum.
        self.atum.broadcast(
            self.source,
            {"app": "astream", "stream": self.stream_id, "index": index, "digest": chunk.digest},
            size_bytes=96,
        )
        # Tier two: push the chunk to the source's children.
        self._push_to_children(self.source, chunk)

    def _push_to_children(self, address: str, chunk: StreamChunk) -> None:
        node = self.atum.nodes[address]
        if not node.is_correct and address != self.source:
            return  # Byzantine nodes do not forward stream data.
        state = self.states.get(address)
        if state is None:
            return
        for child in state.children:
            node.send_direct(
                child,
                "astream.push",
                {"chunk": chunk},
                size_bytes=chunk.size_bytes,
            )

    def _on_push(self, address: str, payload: Dict) -> None:
        chunk = payload.get("chunk")
        if not isinstance(chunk, StreamChunk):
            return
        self._accept_chunk(address, chunk)

    def _accept_chunk(self, address: str, chunk: StreamChunk) -> None:
        state = self.states.setdefault(address, _NodeStreamState())
        if chunk.index in state.received_chunks:
            return
        known_digest = state.known_digests.get(chunk.index)
        if known_digest is not None and known_digest != chunk.digest:
            self.atum.sim.metrics.increment("astream.invalid_chunks")
            return
        state.received_chunks[chunk.index] = self.atum.sim.now
        self.atum.sim.metrics.observe(
            "astream.tier2_latency", self.atum.sim.now - chunk.created_at
        )
        self._push_to_children(address, chunk)

    # ------------------------------------------------------------------ pulling

    def _on_digest(self, address: str, payload: Dict) -> None:
        """Tier-one delivery of a chunk digest: arm the pull fallback."""
        index = payload.get("index")
        digest = payload.get("digest")
        if index is None or digest is None:
            return
        state = self.states.setdefault(address, _NodeStreamState())
        state.known_digests[index] = digest
        if index in state.received_chunks or address == self.source:
            return

        def maybe_pull() -> None:
            current = self.states.get(address)
            if current is None or index in current.received_chunks:
                return
            current.pulls_issued += 1
            self.atum.sim.metrics.increment("astream.pulls")
            node = self.atum.nodes[address]
            for parent in current.parents:
                node.send_direct(parent, "astream.pull", {"index": index}, size_bytes=64)

        self.atum.sim.schedule(self.pull_timeout, maybe_pull, tag="astream.pull-check")

    def _on_pull(self, address: str, payload: Dict, requester: str) -> None:
        index = payload.get("index")
        state = self.states.get(address)
        node = self.atum.nodes[address]
        if state is None or index not in state.received_chunks or not node.is_correct:
            return
        chunk = self.chunks.get(index)
        if chunk is None:
            return
        node.send_direct(requester, "astream.push", {"chunk": chunk}, size_bytes=chunk.size_bytes)

    # ------------------------------------------------------------------ queries

    def delivery_fraction(self, chunk_index: int) -> float:
        """Fraction of correct member nodes that received the given chunk."""
        members = [
            address
            for address, node in self.atum.nodes.items()
            if node.is_correct and node.is_member
        ]
        if not members:
            return 0.0
        received = sum(
            1
            for address in members
            if chunk_index in self.states.get(address, _NodeStreamState()).received_chunks
        )
        return received / len(members)

    def tier2_latencies(self) -> List[float]:
        """All tier-two chunk delivery latencies observed so far."""
        return list(self.atum.sim.metrics.histogram("astream.tier2_latency").samples)

    # ---------------------------------------------------------------- snapshots

    def snapshot(self, address: str) -> Dict:
        """A deterministic copy of one node's stream prefix.

        Covers the received chunk indexes (with receipt times, so a restore
        reproduces the exact per-node state) and the tier-one digests the
        node authenticated them against.  Like the AShare index, this is a
        pure function of what the node was delivered, so the checkpoint
        digest that certifies the delivery prefix transitively certifies
        the snapshot.
        """
        state = self.states.get(address) or _NodeStreamState()
        return {
            "app": "astream",
            "stream": self.stream_id,
            "received": tuple(
                (index, state.received_chunks[index])
                for index in sorted(state.received_chunks)
            ),
            "digests": tuple(
                (index, state.known_digests[index])
                for index in sorted(state.known_digests)
            ),
        }

    def snapshot_digest(self, address: str) -> str:
        """Certified digest of :meth:`snapshot` (what a transfer must match)."""
        return digest_object(self.snapshot(address))

    def restore(
        self,
        address: str,
        snapshot: Dict,
        expected_digest: Optional[str] = None,
    ) -> bool:
        """Install a stream-prefix snapshot; reject-and-count on mismatch.

        Rejected (``astream.snapshot_rejected``) when the digest differs
        from ``expected_digest``, the snapshot is malformed or names a
        different stream, the received indexes are not a contiguous prefix
        from chunk 0 (a truncated or holey prefix cannot be the state of a
        node that pulled every gap), or any claimed chunk digest disagrees
        with the digest the source would have broadcast.  Returns True iff
        the state was installed (forest topology is left untouched —
        parents and children belong to the live session, not the prefix).
        """

        def reject() -> bool:
            self.atum.sim.metrics.increment("astream.snapshot_rejected")
            return False

        if not isinstance(snapshot, dict) or snapshot.get("app") != "astream":
            return reject()
        if snapshot.get("stream") != self.stream_id:
            return reject()
        if expected_digest is not None and digest_object(snapshot) != expected_digest:
            return reject()
        try:
            received = [(int(index), float(when)) for index, when in snapshot["received"]]
            digests = {int(index): str(digest) for index, digest in snapshot["digests"]}
        except (KeyError, TypeError, ValueError):
            return reject()
        if [index for index, _ in received] != list(range(len(received))):
            return reject()
        for index, digest in digests.items():
            expected = digest_object(
                {"stream": self.stream_id, "index": index, "size": self.chunk_bytes}
            )
            if digest != expected:
                return reject()
        state = self.states.setdefault(address, _NodeStreamState())
        state.received_chunks = dict(received)
        state.known_digests = digests
        self.atum.sim.metrics.increment("astream.snapshots_restored")
        return True


__all__ = ["StreamChunk", "AStreamSession"]
