"""Figure 9: AShare read performance (latency per MB) versus NFS4.

Reads files of 2 MB to 2 GB in three configurations:

* NFS4 -- a client reads from a single server over one connection;
* AShare simple -- single-chunk files read from one replica (the fair,
  like-for-like comparison with NFS);
* AShare parallel -- 10-chunk files pulled in parallel from two replicas with
  multithreaded digest verification.

Expected shape: latency/MB decreases with file size for every system (the
constant transfer-initiation overhead amortises); AShare simple roughly
matches NFS for large files; AShare parallel outperforms NFS by up to ~2x for
files of 512 MB and above.
"""

from repro.analysis import format_table
from repro.apps.ashare import AShareCluster
from repro.baselines import NfsServerModel
from repro.core.cluster import AtumCluster
from repro.core.config import AtumParameters

MB = 1024 * 1024
FILE_SIZES_MB = [2, 8, 32, 128, 512, 1024, 2048]


def _run(scale):
    params = AtumParameters(hc=3, rwl=5, gmax=8, gmin=4, round_duration=0.5, expected_system_size=20)
    atum = AtumCluster(params, seed=0)
    addresses = [f"n{i}" for i in range(20)]
    atum.build_static(addresses)
    share = AShareCluster(atum, rho=4, replication_feedback=False)
    nfs = NfsServerModel()

    rows = []
    for size_mb in FILE_SIZES_MB:
        size = size_mb * MB
        nfs.store(f"file-{size_mb}", size)
        nfs_latency = nfs.read_latency_per_mb(f"file-{size_mb}")

        # AShare simple: one chunk, one replica holder besides the reader.
        share.put("n0", f"simple-{size_mb}", size_bytes=size, num_chunks=1)
        # AShare parallel: ten chunks, two replica holders.
        share.put("n0", f"parallel-{size_mb}", size_bytes=size, num_chunks=10)
        atum.run(until=atum.sim.now + 30.0)
        share.seed_replicas("n0", f"parallel-{size_mb}", ["n1"])

        simple_latency = share.get("n5", "n0", f"simple-{size_mb}")
        parallel_latency = share.get("n6", "n0", f"parallel-{size_mb}")
        rows.append(
            {
                "file_size_mb": size_mb,
                "nfs4_s_per_mb": round(nfs_latency, 3),
                "ashare_simple_s_per_mb": round(simple_latency / size_mb, 3),
                "ashare_parallel_s_per_mb": round(parallel_latency / size_mb, 3),
            }
        )
    return rows


def test_fig9_ashare_read(benchmark, scale):
    rows = benchmark.pedantic(_run, args=(scale,), rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Figure 9: read latency per MB (lower is better)"))

    # Latency/MB decreases with file size for every system.
    for column in ("nfs4_s_per_mb", "ashare_simple_s_per_mb", "ashare_parallel_s_per_mb"):
        values = [row[column] for row in rows]
        assert values[-1] < values[0]

    small = rows[0]
    large = next(row for row in rows if row["file_size_mb"] == 1024)
    # AShare simple is within ~25% of NFS for large files (same strategy plus
    # integrity checking overhead).
    assert large["ashare_simple_s_per_mb"] <= large["nfs4_s_per_mb"] * 1.25
    # AShare parallel beats NFS for large files, approaching a 2x improvement.
    assert large["ashare_parallel_s_per_mb"] < large["nfs4_s_per_mb"]
    assert large["nfs4_s_per_mb"] / large["ashare_parallel_s_per_mb"] >= 1.4
    # For tiny files the fixed overhead dominates every system.
    assert small["nfs4_s_per_mb"] > large["nfs4_s_per_mb"]
