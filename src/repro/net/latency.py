"""Latency models for the simulated network.

Two ready-made profiles mirror the paper's two deployment environments:

* :class:`LanProfile` -- a single EC2 datacenter (Ireland), used for the
  synchronous Atum variant.  Latencies are sub-millisecond to a few
  milliseconds and tightly concentrated.
* :class:`WanProfile` -- 8 regions across Europe, Asia, Australia and America,
  used for the asynchronous variant.  Latencies depend on the region pair and
  have a heavier tail.
"""

from __future__ import annotations

import abc
import math
import random
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple


class LatencyModel(abc.ABC):
    """Samples a one-way network latency (seconds) for a sender/receiver pair."""

    #: When not ``None``, every sample equals this value and consumes no
    #: randomness; the network's burst fast path reads it once per burst and
    #: skips the per-message ``sample`` call.
    constant_latency: Optional[float] = None

    @abc.abstractmethod
    def sample(self, rng: random.Random, sender: str, receiver: str) -> float:
        """Return a latency sample in seconds."""


@dataclass
class FixedLatency(LatencyModel):
    """A constant latency; useful in unit tests for exact timing assertions."""

    latency: float = 0.001

    @property
    def constant_latency(self) -> Optional[float]:  # type: ignore[override]
        return self.latency

    def sample(self, rng: random.Random, sender: str, receiver: str) -> float:
        return self.latency


@dataclass
class UniformLatency(LatencyModel):
    """Latency drawn uniformly from ``[low, high]``."""

    low: float = 0.0005
    high: float = 0.002

    def sample(self, rng: random.Random, sender: str, receiver: str) -> float:
        return rng.uniform(self.low, self.high)


@dataclass
class LogNormalLatency(LatencyModel):
    """Log-normally distributed latency around a median with a tail.

    ``median`` is the 50th percentile in seconds and ``sigma`` controls the
    spread of the distribution (in log space).
    """

    median: float = 0.001
    sigma: float = 0.3
    floor: float = 0.0001

    def __post_init__(self) -> None:
        # ``log(median)`` only changes when ``median`` does; cache it so the
        # per-message fast path is one float compare plus ``lognormvariate``.
        self._mu = math.log(self.median)
        self._mu_median = self.median

    def sample(self, rng: random.Random, sender: str, receiver: str) -> float:
        median = self.median
        if median != self._mu_median:
            # The public field was reassigned; revalidate the cached log.
            self._mu = math.log(median)
            self._mu_median = median
        value = rng.lognormvariate(self._mu, self.sigma)
        return max(self.floor, value)


class LanProfile(LogNormalLatency):
    """Single-datacenter latency profile (median 0.5 ms, light tail)."""

    def __init__(self) -> None:
        super().__init__(median=0.0005, sigma=0.25, floor=0.0001)


#: Upper bound on cached per-pair latency parameters (see RegionalLatency).
_MU_CACHE_LIMIT = 262_144

#: Representative one-way latencies (seconds) between EC2-like regions.
_REGION_BASE_LATENCY: Dict[Tuple[str, str], float] = {}


def _register_region_pair(a: str, b: str, latency: float) -> None:
    _REGION_BASE_LATENCY[(a, b)] = latency
    _REGION_BASE_LATENCY[(b, a)] = latency


_DEFAULT_REGIONS: Sequence[str] = (
    "eu-west",      # Ireland
    "eu-central",   # Frankfurt
    "us-east",      # Virginia
    "us-west",      # Oregon
    "sa-east",      # Sao Paulo
    "ap-southeast", # Singapore
    "ap-northeast", # Tokyo
    "ap-sydney",    # Sydney
)

# Approximate one-way WAN latencies between the 8 regions used in the paper's
# asynchronous deployment (values in seconds; derived from public RTT tables).
_register_region_pair("eu-west", "eu-central", 0.012)
_register_region_pair("eu-west", "us-east", 0.040)
_register_region_pair("eu-west", "us-west", 0.070)
_register_region_pair("eu-west", "sa-east", 0.092)
_register_region_pair("eu-west", "ap-southeast", 0.088)
_register_region_pair("eu-west", "ap-northeast", 0.105)
_register_region_pair("eu-west", "ap-sydney", 0.140)
_register_region_pair("eu-central", "us-east", 0.045)
_register_region_pair("eu-central", "us-west", 0.075)
_register_region_pair("eu-central", "sa-east", 0.100)
_register_region_pair("eu-central", "ap-southeast", 0.082)
_register_region_pair("eu-central", "ap-northeast", 0.110)
_register_region_pair("eu-central", "ap-sydney", 0.145)
_register_region_pair("us-east", "us-west", 0.032)
_register_region_pair("us-east", "sa-east", 0.060)
_register_region_pair("us-east", "ap-southeast", 0.110)
_register_region_pair("us-east", "ap-northeast", 0.080)
_register_region_pair("us-east", "ap-sydney", 0.100)
_register_region_pair("us-west", "sa-east", 0.090)
_register_region_pair("us-west", "ap-southeast", 0.085)
_register_region_pair("us-west", "ap-northeast", 0.055)
_register_region_pair("us-west", "ap-sydney", 0.070)
_register_region_pair("sa-east", "ap-southeast", 0.160)
_register_region_pair("sa-east", "ap-northeast", 0.130)
_register_region_pair("sa-east", "ap-sydney", 0.155)
_register_region_pair("ap-southeast", "ap-northeast", 0.035)
_register_region_pair("ap-southeast", "ap-sydney", 0.045)
_register_region_pair("ap-northeast", "ap-sydney", 0.052)


@dataclass
class RegionalLatency(LatencyModel):
    """Latency derived from a node-to-region assignment.

    Intra-region messages use a LAN-like latency.  Inter-region messages use
    the base latency of the region pair with log-normal jitter.
    """

    region_of: Dict[str, str]
    intra_region_median: float = 0.001
    jitter_sigma: float = 0.15
    default_inter_region: float = 0.080

    def __post_init__(self) -> None:
        # Per-pair cache of ``log(base_latency)``: sampling a latency for a
        # known (sender, receiver) pair costs one dict hit plus one
        # ``lognormvariate`` draw.  The cached intra/default parameters are
        # re-checked on every sample so reassigning those public fields takes
        # effect immediately, as it did before the cache existed.
        self._mu_cache: Dict[Tuple[str, str], float] = {}
        self._cached_intra = self.intra_region_median
        self._cached_default = self.default_inter_region

    def invalidate_pair_cache(self) -> None:
        """Drop cached per-pair latencies (after mutating ``region_of`` or
        the latency parameters directly)."""
        self._mu_cache.clear()
        self._cached_intra = self.intra_region_median
        self._cached_default = self.default_inter_region

    def region(self, address: str) -> str:
        return self.region_of.get(address, _DEFAULT_REGIONS[0])

    def base_latency(self, sender: str, receiver: str) -> float:
        region_a = self.region(sender)
        region_b = self.region(receiver)
        if region_a == region_b:
            return self.intra_region_median
        return _REGION_BASE_LATENCY.get((region_a, region_b), self.default_inter_region)

    def sample(self, rng: random.Random, sender: str, receiver: str) -> float:
        if (
            self.intra_region_median != self._cached_intra
            or self.default_inter_region != self._cached_default
        ):
            self.invalidate_pair_cache()
        pair = (sender, receiver)
        mu = self._mu_cache.get(pair)
        if mu is None:
            mu = math.log(self.base_latency(sender, receiver))
            # Only cache pairs whose endpoints both have explicit region
            # assignments: assignments are add-only, so such entries can
            # never go stale and joins need no cache invalidation at all.
            # The bound keeps long churn runs (which mint fresh addresses
            # forever) from growing the cache without limit; a rare full
            # reset simply re-warms the live pairs.
            if sender in self.region_of and receiver in self.region_of:
                if len(self._mu_cache) >= _MU_CACHE_LIMIT:
                    self._mu_cache.clear()
                self._mu_cache[pair] = mu
        return rng.lognormvariate(mu, self.jitter_sigma)


class WanProfile(RegionalLatency):
    """8-region WAN profile; nodes are assigned to regions round-robin."""

    def __init__(self, addresses: Optional[Sequence[str]] = None) -> None:
        region_of: Dict[str, str] = {}
        if addresses:
            for index, address in enumerate(addresses):
                region_of[address] = _DEFAULT_REGIONS[index % len(_DEFAULT_REGIONS)]
        super().__init__(region_of=region_of)

    def assign(self, address: str) -> str:
        """Assign (and remember) a region for a new address, round-robin.

        No cache invalidation is needed: pairs involving an unassigned
        address are never cached (see :meth:`RegionalLatency.sample`), and
        existing assignments are never changed.
        """
        if address not in self.region_of:
            index = len(self.region_of) % len(_DEFAULT_REGIONS)
            self.region_of[address] = _DEFAULT_REGIONS[index]
        return self.region_of[address]


DEFAULT_REGIONS = _DEFAULT_REGIONS

__all__ = [
    "LatencyModel",
    "FixedLatency",
    "UniformLatency",
    "LogNormalLatency",
    "LanProfile",
    "RegionalLatency",
    "WanProfile",
    "DEFAULT_REGIONS",
]
