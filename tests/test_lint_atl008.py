"""ATL008: hash()/id() values on protocol/ordering paths."""

from lint_utils import lint_fixture, rules_of


def test_flags_every_hash_and_id_call():
    findings = lint_fixture("atl008_bad.py", rules=["ATL008"])
    assert rules_of(findings) == ["ATL008", "ATL008", "ATL008"]
    messages = "\n".join(f.message for f in findings)
    assert "hash()" in messages
    assert "id()" in messages
    assert "repro.crypto.digest" in messages  # points at the stable alternative


def test_digest_ordering_and_waived_identity_cache_pass():
    assert lint_fixture("atl008_ok.py") == []
