"""ATL006: metric name literals validated against the generated registry."""

from lint_utils import lint_fixture, rules_of


def test_flags_typo_unknown_subscript_and_unknown_histogram():
    findings = lint_fixture("atl006_bad.py", rules=["ATL006"])
    assert rules_of(findings) == ["ATL006", "ATL006", "ATL006"]
    messages = "\n".join(f.message for f in findings)
    assert "'invariants.check_error'" in messages  # the typo'd counter
    assert "'no.such.metric'" in messages  # container-subscript idiom
    assert "'also.not.registered'" in messages  # histogram observe


def test_registered_names_and_reasoned_pragma_pass():
    assert lint_fixture("atl006_ok.py") == []
