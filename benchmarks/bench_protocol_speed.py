"""Protocol speed: broadcast msgs/sec of the protocol stack vs the pre-PR path.

Where ``bench_kernel_speed.py`` measures the simulation kernel,
this benchmark measures the *protocol layers* above it — group-message
fan-out, gossip forwarding over the H-graph, and the membership engine — and
writes ``BENCH_protocol.json`` at the repo root with the recorded
pre-optimisation baseline next to the current numbers.

Three scenarios (see :mod:`repro.sim.protocol_perf`):

* ``broadcast`` — the gossip stack with per-message delivery events (the
  pre-PR event granularity); held to a conservative 2x floor.
* ``broadcast_coalesced`` — the full fast path with batched fan-out delivery
  (``NetworkConfig.coalesced_fanout_delivery``); held to the 3x target.
* ``churn`` — membership ops/sec under sustained joins/leaves; 1.2x floor.

The benchmark also fans a seeded shard sweep through ``repro.sim.runpar``
and asserts the multiprocess merge is identical to the serial merge — the
parallel runner must never change results, only wall-clock.
"""

import json
import os

from repro.sim.protocol_perf import (
    BASELINE_PROTOCOL_RATES,
    TARGET_CHURN_SPEEDUP,
    TARGET_PROTOCOL_SPEEDUP,
    TARGET_PROTOCOL_SPEEDUP_UNCOALESCED,
    write_report,
)
from repro.sim.runpar import run_and_merge

REPORT_PATH = os.path.join(os.path.dirname(os.path.dirname(__file__)), "BENCH_protocol.json")

RUNPAR_SHARD_KWARGS = {
    "groups": 8,
    "group_size": 6,
    "broadcasts": 4,
    "horizon": 30.0,
    "heartbeat_period": None,
    "randomized_send_order": False,
}


def test_protocol_speed(benchmark, scale):
    repeats = max(3, scale)
    report = benchmark.pedantic(
        write_report, args=(REPORT_PATH,), kwargs={"repeats": repeats}, rounds=1, iterations=1
    )
    print()
    print(json.dumps(report, indent=2, sort_keys=True))

    scenarios = report["scenarios"]
    assert (
        scenarios["broadcast"]["baseline_msgs_per_sec"]
        == BASELINE_PROTOCOL_RATES["broadcast_msgs_per_sec"]
    )
    assert (
        scenarios["churn"]["baseline_ops_per_sec"]
        == BASELINE_PROTOCOL_RATES["churn_ops_per_sec"]
    )
    for name in ("broadcast", "broadcast_coalesced", "churn"):
        current_key = (
            "current_ops_per_sec" if name == "churn" else "current_msgs_per_sec"
        )
        assert scenarios[name][current_key] > 0

    # The churn workload narrowly catches MembershipError and counts it; a
    # non-zero count means failures are being converted into "fewer ops",
    # which would silently deflate the measured rate.
    assert scenarios["churn"]["swallowed_errors"] == 0

    # The full protocol fast path (batched fan-out delivery) must beat the
    # pre-PR protocol stack by the target factor on broadcast dissemination;
    # the per-message-event variant and the membership engine must clear
    # their conservative floors.
    assert scenarios["broadcast_coalesced"]["speedup"] >= TARGET_PROTOCOL_SPEEDUP
    assert scenarios["broadcast"]["speedup"] >= TARGET_PROTOCOL_SPEEDUP_UNCOALESCED
    assert scenarios["churn"]["speedup"] >= TARGET_CHURN_SPEEDUP


def test_runpar_merge_matches_serial():
    """Fanning shards across processes must not change any merged metric."""
    seeds = [11, 12, 13, 14]
    serial = run_and_merge(
        "repro.sim.protocol_perf:broadcast_shard", seeds, workers=1, kwargs=RUNPAR_SHARD_KWARGS
    )
    parallel = run_and_merge(
        "repro.sim.protocol_perf:broadcast_shard", seeds, workers=2, kwargs=RUNPAR_SHARD_KWARGS
    )
    assert parallel["shards"] == serial["shards"] == len(seeds)
    assert parallel["counters"] == serial["counters"]
    for name, histogram in serial["histograms"].items():
        assert parallel["histograms"][name].samples == histogram.samples
