"""Group messages: reliable communication between pairs of vgroups.

A group message from vgroup A to vgroup B is a message that all correct nodes
of A send to all nodes of B; a node of B *accepts* it once it has received the
message from a strict majority of A's membership (paper section 3.1).  Because
every vgroup has a correct majority, an accepted group message is guaranteed to
originate from a decision of A's state machine, not from a Byzantine minority.

The messenger also implements the *message digest* optimisation of section
5.1: only a majority of A's nodes send the full payload, the remaining nodes
send just a digest.  Digest copies count towards acceptance, but delivery to
the upper layer happens only once a full copy is available.

Hot-path layout (the m×m fan-out of every broadcast hop flows through here):

* :meth:`GroupMessenger.send` builds ONE immutable envelope per gm-id and
  ships per-destination copies of it through :meth:`Network.send_fanout` —
  envelopes are read-only on the receive path, so the m destinations share
  the same object instead of constructing m identical ones;
* the full-copy-vs-digest decision is cached per own-view snapshot (views are
  immutable, so identity is a sound cache key);
* :meth:`GroupMessenger.handle` keeps ``__slots__`` accumulation state, drops
  it on delivery, and dedups shares of already-accepted gm-ids with a single
  O(1) set lookup.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, Optional, Set, Tuple

from repro.core.middleware import MiddlewareContext
from repro.crypto.digest import digest_object
from repro.group.vgroup import VGroupView, majority_threshold
from repro.net.network import Network
from repro.sim.simulator import Simulator


@dataclass
class NodeBinding:
    """How the messenger is attached to its host node."""

    address: str
    network: Network
    sim: Simulator


@dataclass(slots=True)
class GroupMessageEnvelope:
    """Node-level wire format of one share of a group message.

    One envelope instance is shared by every destination of a burst (and by
    every queued delivery): receivers treat it as read-only.  (``slots`` keeps
    construction and field access on the m×m hot path cheap; the class is not
    frozen because frozen dataclasses construct via ``object.__setattr__``,
    which roughly doubles the per-envelope cost.)

    Attributes:
        gm_id: Identifier of the group message (same for all shares).
        source_group: Group id of the sending vgroup.
        source_epoch: Epoch of the sender's view of its own vgroup.
        target_group: Group id of the destination vgroup.
        kind: Application-level type tag (e.g. ``"gossip"``, ``"walk"``).
        payload: Full payload, or ``None`` when this share carries only a digest.
        digest: Digest of the payload (always present).
        sender_group_size: Size of the sending vgroup (for majority counting).
    """

    gm_id: str
    source_group: str
    source_epoch: int
    target_group: str
    kind: str
    payload: Optional[Any]
    digest: str
    sender_group_size: int


class _PendingGroupMessage:
    """Receiver-side accumulation state for one (gm_id, digest) pair."""

    __slots__ = ("digest", "senders", "required", "full_payload", "accepted")

    def __init__(self, digest: str, required: int) -> None:
        self.digest = digest
        self.senders: Set[str] = set()
        self.required = required
        self.full_payload: Optional[Any] = None
        self.accepted = False


class GroupMessenger:
    """Per-node component that sends and accepts group messages.

    The host node provides its current view of its own vgroup via
    ``own_view_fn`` and receives accepted group messages through the
    ``on_accept`` callback, which is invoked exactly once per group message
    with ``(kind, payload, source_group, gm_id)``.
    """

    def __init__(
        self,
        binding: NodeBinding,
        own_view_fn: Callable[[], VGroupView],
        on_accept: Callable[[str, Any, str, str], None],
        payload_bytes: int = 1024,
        digest_bytes: int = 96,
        use_digest_optimization: bool = True,
        source_size_fn: Optional[Callable[[str], Optional[int]]] = None,
    ) -> None:
        self.binding = binding
        self.own_view_fn = own_view_fn
        self.on_accept = on_accept
        self.payload_bytes = payload_bytes
        self.digest_bytes = digest_bytes
        self.use_digest_optimization = use_digest_optimization
        # Directory cross-check of the envelope's claimed sender-group size
        # (see handle()): returns the smallest size the directory ever saw
        # for a group id, or None for unknown groups.  ``None`` disables the
        # check (bare messengers without a directory).
        self.source_size_fn = source_size_fn
        # Compiled on_deliver pipeline of the cluster's middleware chain
        # (repro.core.middleware), dispatched just before an accepted group
        # message is delivered.  ``None`` costs one attribute check per
        # *accept* (not per share) and never changes event order, so golden
        # traces are safe.
        self._accept_hooks = None
        self._mw_scenario = ""
        # Accumulation state keyed by gm-id alone (the overwhelmingly common
        # case: one digest per gm-id).  Shares carrying a *different* digest
        # for an already-tracked gm-id — only Byzantine equivocation produces
        # them — accumulate separately in ``_conflicting``, keyed by the full
        # (gm_id, digest) pair, so they can never pollute the honest majority.
        self._pending: Dict[str, _PendingGroupMessage] = {}
        self._conflicting: Dict[Tuple[str, str], _PendingGroupMessage] = {}
        self._delivered_gm_ids: Set[str] = set()
        self._gm_counter = 0
        # Single-entry cache of the full-copy-vs-digest decision, keyed by the
        # identity of the (immutable) own-view snapshot it was computed for.
        self._send_full_view: Optional[VGroupView] = None
        self._send_full = True
        # Prebound hot-path handles.
        self._send_fanout = binding.network.send_fanout
        self._metrics_increment = binding.sim.metrics.increment
        self._address = binding.address

    def set_middleware_hooks(self, accept_hooks, scenario: str = "") -> None:
        """Install the compiled ``on_deliver`` pipeline for accepted messages."""
        self._accept_hooks = accept_hooks
        self._mw_scenario = scenario

    # ------------------------------------------------------------------ sending

    def next_gm_id(self, label: str = "gm") -> str:
        self._gm_counter += 1
        return f"{self.binding.address}/{label}/{self._gm_counter}"

    def _sends_full_copy(self, own_view: VGroupView) -> bool:
        """Whether this node sends full payloads under ``own_view``.

        Digest optimisation: members are ordered deterministically; the first
        majority sends the full payload, the rest send only the digest.
        """
        if own_view is self._send_full_view:
            return self._send_full
        members = own_view.members
        address = self.binding.address
        send_full = (not self.use_digest_optimization) or (
            address in members[: majority_threshold(len(members))]
        ) or (address not in members)
        self._send_full_view = own_view
        self._send_full = send_full
        return send_full

    def send(
        self,
        target_view: VGroupView,
        kind: str,
        payload: Any,
        gm_id: Optional[str] = None,
        payload_bytes: Optional[int] = None,
    ) -> str:
        """Send this node's share of a group message to every node of ``target_view``.

        Every correct member of the sending vgroup is expected to make the same
        call with the same ``gm_id`` (they all execute the same decided
        operation); this method sends only the local node's shares.
        """
        own_view = self.own_view_fn()
        identifier = gm_id or self.next_gm_id(kind)
        digest = digest_object(payload)
        send_full = self._sends_full_copy(own_view)
        if send_full:
            size = payload_bytes if payload_bytes is not None else self.payload_bytes
        else:
            payload = None
            size = self.digest_bytes

        envelope = GroupMessageEnvelope(
            gm_id=identifier,
            source_group=own_view.group_id,
            source_epoch=own_view.epoch,
            target_group=target_view.group_id,
            kind=kind,
            payload=payload,
            digest=digest,
            sender_group_size=own_view.size,
        )
        members = target_view.members
        self._send_fanout(self._address, members, envelope, size)
        self._metrics_increment("group.shares_sent", len(members))
        return identifier

    def send_equivocating(
        self,
        target_view: VGroupView,
        kind: str,
        payload: Any,
        forged_payload: Any,
        gm_id: Optional[str] = None,
        payload_bytes: Optional[int] = None,
    ) -> str:
        """Byzantine equivocation: conflicting shares to halves of the target.

        The first half of the destination vgroup receives ``payload``, the
        second half ``forged_payload`` — same ``gm_id``, different digests.
        Receivers accumulate the conflicting digest in its own equivocation
        bucket (see :meth:`handle`), so a Byzantine minority can never push
        the forged variant past the majority-acceptance rule.  Both shares
        carry full payloads: an equivocator gains nothing from the digest
        optimisation and a full forged copy is the stronger attack.
        """
        own_view = self.own_view_fn()
        identifier = gm_id or self.next_gm_id(kind)
        size = payload_bytes if payload_bytes is not None else self.payload_bytes
        members = target_view.members
        half = len(members) // 2
        honest_targets, forged_targets = members[:half], members[half:]
        for chunk, chunk_payload in ((honest_targets, payload), (forged_targets, forged_payload)):
            if not chunk:
                continue
            envelope = GroupMessageEnvelope(
                gm_id=identifier,
                source_group=own_view.group_id,
                source_epoch=own_view.epoch,
                target_group=target_view.group_id,
                kind=kind,
                payload=chunk_payload,
                digest=digest_object(chunk_payload),
                sender_group_size=own_view.size,
            )
            self._send_fanout(self._address, chunk, envelope, size)
        self._metrics_increment("group.shares_sent", len(members))
        self._metrics_increment("group.equivocations_sent")
        return identifier

    # ---------------------------------------------------------------- receiving

    def handle(self, envelope: GroupMessageEnvelope, sender: str) -> None:
        """Process one share of a group message arriving from ``sender``."""
        gm_id = envelope.gm_id
        if gm_id in self._delivered_gm_ids:
            return
        digest = envelope.digest
        pending = self._pending
        state = pending.get(gm_id)
        if state is None:
            size = envelope.sender_group_size
            state = pending[gm_id] = _PendingGroupMessage(
                digest, (size if size > 1 else 1) // 2 + 1
            )
        elif state.digest != digest:
            # Equivocation: a share whose digest disagrees with the tracked
            # one accumulates in its own (gm_id, digest) bucket.
            key = (gm_id, digest)
            state = self._conflicting.get(key)
            if state is None:
                size = envelope.sender_group_size
                state = self._conflicting[key] = _PendingGroupMessage(
                    digest, (size if size > 1 else 1) // 2 + 1
                )
        senders = state.senders
        senders.add(sender)
        payload = envelope.payload
        if payload is not None and state.full_payload is None:
            state.full_payload = payload

        if not state.accepted and len(senders) >= state.required:
            # Forged-size rejection: the claimed sender-group size sets the
            # acceptance threshold, so a Byzantine minority could lie it down
            # to 1 and push a message through alone.  Cross-check against the
            # directory's smallest-ever size of the source group: the claim
            # may never *lower* the majority below the directory's view.
            # Honest shares always carry a size >= that minimum (shares are
            # stamped with the size at send time), so this never blocks an
            # honest group message and never changes event order.
            if self.source_size_fn is not None:
                known_size = self.source_size_fn(envelope.source_group)
                if known_size is not None and len(senders) < majority_threshold(
                    known_size
                ):
                    self._metrics_increment("group.forged_size_rejected")
                    return
            state.accepted = True
        if state.accepted and state.full_payload is not None:
            # Accepted with a full copy available: deliver exactly once, then
            # retire the accumulation state — later shares of this gm-id short
            # circuit on the O(1) delivered-set lookup above.
            self._delivered_gm_ids.add(gm_id)
            pending.pop(gm_id, None)
            if self._conflicting:
                # Retire every equivocating bucket of this gm-id too, or they
                # would linger forever (the delivered-set short-circuits all
                # future shares).  Only populated under Byzantine
                # equivocation, so the scan is effectively free.
                for key in [k for k in self._conflicting if k[0] == gm_id]:
                    del self._conflicting[key]
            self._metrics_increment("group.messages_accepted")
            hooks = self._accept_hooks
            if hooks is not None:
                ctx = MiddlewareContext(
                    "on_deliver",
                    now=self.binding.sim.now,
                    scenario=self._mw_scenario,
                    channel="group",
                    receiver=self._address,
                    address=self._address,
                    payload=envelope,
                    senders=senders,
                )
                for hook in hooks:
                    hook(ctx)
                    if ctx.stop:
                        break
            self.on_accept(
                envelope.kind, state.full_payload, envelope.source_group, gm_id
            )

    def verify_share(self, envelope: GroupMessageEnvelope) -> bool:
        """Payload-digest verification of one full share.

        A share carrying a full payload must digest to the envelope's
        ``digest`` field; anything else is wire corruption (or tampering)
        and must be discarded before it can pollute accumulation state.
        Digest-only shares carry nothing to verify — a corrupted digest is
        indistinguishable from an equivocating digest and lands in its own
        conflicting bucket, where it can never reach a majority.
        """
        if envelope.payload is None:
            return True
        return digest_object(envelope.payload) == envelope.digest

    def handle_corrupted(self, envelope: GroupMessageEnvelope, sender: str) -> None:
        """Process a share whose bits were flipped in transit.

        Models the corruption, then runs the same digest verification a
        receiver applies to any full share: the tampered payload no longer
        matches the envelope's digest, so the share is discarded.  A share
        that (impossibly, for a collision-resistant digest) still verified
        would be processed normally.
        """
        if envelope.payload is not None:
            tampered = replace(envelope, payload=("bitflip", envelope.payload))
        else:
            # Digest-only share: the flip garbles the digest itself.
            tampered = replace(envelope, digest="bitflip:" + envelope.digest)
        if not self.verify_share(tampered):
            self._metrics_increment("group.corrupted_shares_dropped")
            return
        self.handle(tampered, sender)

    # ----------------------------------------------------------------- queries

    def pending_count(self) -> int:
        return len(self._pending) + len(self._conflicting)


__all__ = ["GroupMessenger", "GroupMessageEnvelope", "NodeBinding"]
